"""Tests for the discrete-event performance model.

These validate the *mechanics* (slots, caches, shuffle modes, overheads)
on small clusters; the figure-level shape assertions live in
``tests/test_experiments.py`` and the benchmark harness.
"""

import pytest

from repro.common.config import CacheConfig, ClusterConfig, DFSConfig, SchedulerConfig
from repro.common.units import GB, MB
from repro.perfmodel.engine import PerfEngine, SimJobSpec
from repro.perfmodel.framework import eclipse_framework, hadoop_framework, spark_framework
from repro.perfmodel.placement import dht_layout, hdfs_layout, skewed_task_keys
from repro.perfmodel.profiles import APP_PROFILES


def small_config(cache_bytes=1 * GB, nodes=8):
    return ClusterConfig(
        num_nodes=nodes,
        rack_size=max(1, nodes // 2),
        map_slots_per_node=4,
        reduce_slots_per_node=4,
        dfs=DFSConfig(block_size=128 * MB),
        cache=CacheConfig(capacity_per_server=cache_bytes, icache_fraction=1.0),
        scheduler=SchedulerConfig(window_tasks=32),
        page_cache_per_node=2 * GB,
    )


def make_engine(framework=None, cache_bytes=1 * GB, nodes=8):
    return PerfEngine(small_config(cache_bytes, nodes), framework or eclipse_framework())


def layout_for(engine, name="input", blocks=32):
    return dht_layout(
        engine.space, engine.ring, name, blocks, engine.config.dfs.block_size
    )


class TestPlacement:
    def test_dht_layout_primary_is_ring_owner(self):
        engine = make_engine()
        blocks = layout_for(engine)
        for b in blocks:
            assert b.primary == engine.ring.owner_of(b.key)
            assert b.holders[0] == b.primary
            assert len(b.holders) == 3

    def test_hdfs_layout_uniform_and_replicated(self):
        engine = make_engine()
        blocks = hdfs_layout(engine.space, range(8), "f", 64, 128 * MB, seed=1)
        assert all(len(b.holders) == 3 for b in blocks)
        primaries = {b.primary for b in blocks}
        assert len(primaries) >= 6  # spread over most servers

    def test_hdfs_layout_skew_concentrates(self):
        engine = make_engine()
        blocks = hdfs_layout(engine.space, range(8), "f", 200, 128 * MB, seed=1, skew=0.6)
        counts = [sum(1 for b in blocks if b.primary == s) for s in range(8)]
        assert counts[0] > counts[-1] * 3

    def test_skewed_task_keys_repeat_popular_blocks(self):
        engine = make_engine()
        blocks = layout_for(engine, blocks=64)
        tasks = skewed_task_keys(blocks, 1000, seed=2)
        assert len(tasks) == 1000
        from collections import Counter

        counts = Counter(t.block_id for t in tasks)
        # Popularity is skewed: the hottest block gets far more than average.
        assert counts.most_common(1)[0][1] > 3 * (1000 / 64)


class TestEngineBasics:
    def test_job_completes_with_positive_makespan(self):
        engine = make_engine()
        spec = SimJobSpec(app=APP_PROFILES["grep"], tasks=layout_for(engine), label="g")
        timing = engine.run_job(spec)
        assert timing.makespan > 0
        assert timing.map_tasks == 32
        assert timing.reduce_tasks >= 1

    def test_tasks_accounted_per_server(self):
        engine = make_engine()
        spec = SimJobSpec(app=APP_PROFILES["grep"], tasks=layout_for(engine))
        timing = engine.run_job(spec)
        assert sum(timing.tasks_per_server.values()) == timing.map_tasks + timing.reduce_tasks

    def test_more_tasks_take_longer(self):
        e1 = make_engine()
        t1 = e1.run_job(SimJobSpec(app=APP_PROFILES["wordcount"], tasks=layout_for(e1, blocks=16)))
        e2 = make_engine()
        t2 = e2.run_job(SimJobSpec(app=APP_PROFILES["wordcount"], tasks=layout_for(e2, blocks=64)))
        assert t2.makespan > t1.makespan

    def test_compute_heavy_slower_than_io_light(self):
        e1 = make_engine()
        grep = e1.run_job(SimJobSpec(app=APP_PROFILES["grep"], tasks=layout_for(e1)))
        e2 = make_engine()
        km = e2.run_job(SimJobSpec(app=APP_PROFILES["kmeans"], tasks=layout_for(e2)))
        assert km.makespan > grep.makespan

    def test_shuffle_volume_tracked(self):
        engine = make_engine()
        spec = SimJobSpec(app=APP_PROFILES["sort"], tasks=layout_for(engine))
        timing = engine.run_job(spec)
        assert timing.bytes_shuffled == pytest.approx(spec.input_bytes, rel=0.01)


class TestCachingEffects:
    def test_second_job_hits_icache_and_runs_faster(self):
        engine = make_engine(cache_bytes=8 * GB)
        blocks = layout_for(engine)
        app = APP_PROFILES["grep"]
        first = engine.run_job(SimJobSpec(app=app, tasks=blocks, label="cold"))
        engine.snapshot_cache_counters()
        second = engine.run_job(SimJobSpec(app=app, tasks=blocks, label="warm"))
        assert second.icache_hits == second.map_tasks
        assert second.makespan < first.makespan

    def test_zero_cache_never_hits(self):
        engine = make_engine(cache_bytes=0)
        blocks = layout_for(engine)
        app = APP_PROFILES["grep"]
        engine.run_job(SimJobSpec(app=app, tasks=blocks))
        engine.snapshot_cache_counters()
        second = engine.run_job(SimJobSpec(app=app, tasks=blocks))
        assert second.icache_hits == 0

    def test_drop_caches_forces_cold_run(self):
        engine = make_engine(cache_bytes=8 * GB)
        blocks = layout_for(engine)
        app = APP_PROFILES["grep"]
        engine.run_job(SimJobSpec(app=app, tasks=blocks))
        engine.drop_caches()
        engine.snapshot_cache_counters()
        second = engine.run_job(SimJobSpec(app=app, tasks=blocks))
        assert second.icache_hits == 0

    def test_hadoop_never_caches_inputs(self):
        engine = make_engine(framework=hadoop_framework())
        blocks = layout_for(engine)
        app = APP_PROFILES["grep"]
        engine.run_job(SimJobSpec(app=app, tasks=blocks))
        engine.snapshot_cache_counters()
        second = engine.run_job(SimJobSpec(app=app, tasks=blocks))
        assert second.icache_hits == 0


class TestFrameworkOverheads:
    def test_hadoop_slower_than_eclipse(self):
        """The container overhead (7 s per task) dominates small tasks."""
        e_ecl = make_engine(eclipse_framework())
        t_ecl = e_ecl.run_job(SimJobSpec(app=APP_PROFILES["grep"], tasks=layout_for(e_ecl)))
        e_had = make_engine(hadoop_framework())
        t_had = e_had.run_job(SimJobSpec(app=APP_PROFILES["grep"], tasks=layout_for(e_had)))
        assert t_had.makespan > t_ecl.makespan

    def test_container_overhead_scales_makespan(self):
        e1 = make_engine(hadoop_framework(container_overhead=1.0))
        t1 = e1.run_job(SimJobSpec(app=APP_PROFILES["grep"], tasks=layout_for(e1, blocks=64)))
        e2 = make_engine(hadoop_framework(container_overhead=10.0))
        t2 = e2.run_job(SimJobSpec(app=APP_PROFILES["grep"], tasks=layout_for(e2, blocks=64)))
        assert t2.makespan > t1.makespan + 5

    def test_spark_first_iteration_slower(self):
        """RDD construction makes Spark's iteration 1 much slower than 2+."""
        engine = make_engine(spark_framework(), cache_bytes=8 * GB)
        spec = SimJobSpec(
            app=APP_PROFILES["kmeans"], tasks=layout_for(engine), iterations=4
        )
        timing = engine.run_job(spec)
        assert len(timing.iteration_times) == 4
        assert timing.iteration_times[0] > 1.5 * timing.iteration_times[1]

    def test_eclipse_iterations_speed_up_after_first(self):
        engine = make_engine(eclipse_framework(), cache_bytes=8 * GB)
        spec = SimJobSpec(
            app=APP_PROFILES["kmeans"], tasks=layout_for(engine), iterations=3
        )
        timing = engine.run_job(spec)
        assert timing.iteration_times[1] < timing.iteration_times[0]

    def test_pagerank_iteration_output_penalty(self):
        """EclipseMR persists the large page rank iteration output; Spark
        keeps it in memory -- Spark's steady-state iterations are faster."""
        e_ecl = make_engine(eclipse_framework(), cache_bytes=8 * GB)
        t_ecl = e_ecl.run_job(
            SimJobSpec(app=APP_PROFILES["pagerank"], tasks=layout_for(e_ecl, blocks=8), iterations=4)
        )
        e_spk = make_engine(spark_framework(), cache_bytes=8 * GB)
        t_spk = e_spk.run_job(
            SimJobSpec(app=APP_PROFILES["pagerank"], tasks=layout_for(e_spk, blocks=8), iterations=4)
        )
        # steady state = iterations after the first
        ecl_steady = min(t_ecl.iteration_times[1:-1])
        spk_steady = min(t_spk.iteration_times[1:-1])
        assert spk_steady < ecl_steady


class TestSchedulingUnderSkew:
    def _skewed_run(self, framework, num_tasks=400):
        engine = make_engine(framework, cache_bytes=2 * GB)
        blocks = layout_for(engine, blocks=64)
        tasks = skewed_task_keys(blocks, num_tasks, seed=3)
        spec = SimJobSpec(app=APP_PROFILES["grep"], tasks=tasks, label="skew")
        return engine, engine.run_job(spec)

    def test_delay_reassigns_under_skew(self):
        _, timing = self._skewed_run(eclipse_framework("delay"))
        assert timing.reassignments > 0

    def test_laf_balances_better_than_delay(self):
        _, t_laf = self._skewed_run(eclipse_framework("laf"))
        _, t_delay = self._skewed_run(eclipse_framework("delay"))
        assert t_laf.tasks_per_slot_stddev(4) < t_delay.tasks_per_slot_stddev(4)
        assert t_laf.reassignments == 0

    def test_laf_faster_than_delay_under_skew(self):
        _, t_laf = self._skewed_run(eclipse_framework("laf"))
        _, t_delay = self._skewed_run(eclipse_framework("delay"))
        assert t_laf.makespan < t_delay.makespan


class TestConcurrentJobs:
    def test_concurrent_jobs_interleave(self):
        engine = make_engine(cache_bytes=4 * GB)
        blocks = layout_for(engine, blocks=16)
        specs = [
            SimJobSpec(app=APP_PROFILES["grep"], tasks=blocks, label=f"j{i}")
            for i in range(3)
        ]
        timings = engine.run_jobs(specs)
        assert len(timings) == 3
        # They share the cluster: the batch is slower than one job alone,
        # but much faster than three sequential runs (overlap).
        solo_engine = make_engine(cache_bytes=4 * GB)
        solo = solo_engine.run_job(
            SimJobSpec(app=APP_PROFILES["grep"], tasks=layout_for(solo_engine, blocks=16))
        )
        batch_makespan = max(t.end for t in timings) - min(t.start for t in timings)
        assert batch_makespan >= solo.makespan
        assert batch_makespan < 3 * solo.makespan + 1.0
