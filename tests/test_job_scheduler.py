"""The multi-job scheduler: many clients, one cluster.

Covers the :mod:`repro.jobs` subsystem end to end against real worker
processes:

* submit/handle API -- a lone submitted job is bit-equal to the legacy
  blocking ``run()`` (same output, same LAF assignment sequence);
* N concurrent jobs (including two submissions of the *same* app id,
  exercising the worker-side job_uid namespacing) all produce correct
  output;
* admission control -- bounded queue, :class:`JobRejected` backpressure,
  queue-depth/wait metrics;
* failure isolation -- one job's mapper raising, or one job being
  cancelled, never perturbs a concurrently running job;
* ``ClusterBusyError`` on a concurrent second blocking ``run()`` and on
  a second ``JobScheduler`` attached to a live cluster;
* the inter-job policy seam (FIFO / fair share / delay), unit-tested on
  synthetic job views.
"""

import threading
import time
from types import SimpleNamespace

import pytest

from repro.apps.grep import grep_job
from repro.apps.wordcount import wordcount_job, wordcount_reduce
from repro.apps.workloads import pack_records, text_corpus
from repro.cluster import ClusterRuntime
from repro.common.config import ClusterConfig, DFSConfig, JobsConfig
from repro.common.errors import (
    ClusterBusyError,
    ClusterError,
    ConfigError,
    JobCancelled,
    JobRejected,
)
from repro.jobs import (
    ClusterSession,
    DispatchContext,
    FairSharePolicy,
    FifoPolicy,
    JobScheduler,
    JobState,
    make_policy,
)
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runtime import EclipseMRRuntime

CFG = ClusterConfig(dfs=DFSConfig(block_size=2048))


def corpus(seed: int = 99):
    return pack_records(text_corpus(seed, num_words=3000, vocab_size=60),
                        CFG.dfs.block_size)


def slow_map_fn(delay: float):
    """A wordcount map that sleeps first -- keeps jobs in flight long
    enough for admission/cancellation races to be deterministic."""

    def slow_map(block: bytes):
        time.sleep(delay)
        for word in block.decode("utf-8", errors="replace").split():
            yield word, 1

    return slow_map


def slow_job(input_file: str, app_id: str, delay: float = 0.4) -> MapReduceJob:
    return MapReduceJob(app_id=app_id, input_file=input_file,
                        map_fn=slow_map_fn(delay), reduce_fn=wordcount_reduce)


def boom_map(block: bytes):
    raise ValueError("mapper exploded")
    yield  # pragma: no cover - makes this a generator like its peers


@pytest.fixture(scope="module")
def cluster():
    """One 4-worker FIFO cluster shared by the happy-path tests."""
    with ClusterRuntime(4, CFG) as rt:
        rt.upload("shared.txt", corpus())
        yield rt


@pytest.fixture(scope="module")
def tight_cluster():
    """Two workers, one active-job slot, one queue slot: the admission
    control corner cases."""
    cfg = ClusterConfig(
        dfs=DFSConfig(block_size=2048),
        jobs=JobsConfig(max_active_jobs=1, max_queued_jobs=1),
    )
    with ClusterRuntime(2, cfg) as rt:
        rt.upload("tight.txt", corpus(7))
        yield rt


def wait_for(predicate, timeout: float = 30.0, what: str = "condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {what}")


class TestSubmitApi:
    def test_submitted_job_matches_blocking_run(self, cluster):
        """submit().result() is the legacy run(): bit-equal output AND the
        identical LAF assignment sequence (tasks_per_server)."""
        seq = EclipseMRRuntime(4, config=CFG)
        seq.upload("shared.txt", corpus())
        ref = seq.run(wordcount_job("shared.txt", app_id="wc-submit"))

        handle = cluster.submit(wordcount_job("shared.txt", app_id="wc-submit"))
        assert handle.app_id == "wc-submit"
        assert handle.job_uid.startswith("wc-submit@")
        res = handle.result(timeout=120)

        assert res.output == ref.output
        assert res.stats.tasks_per_server == ref.stats.tasks_per_server
        assert handle.done()
        assert handle.state is JobState.SUCCEEDED
        assert handle.state.terminal
        timing = handle.metrics()
        assert timing["state"] == "succeeded"
        assert timing["makespan_s"] >= timing["run_s"] >= 0.0
        assert cluster.metrics.histogram("sched.queue_wait_s").count >= 1
        assert cluster.metrics.counter("sched.jobs_completed").value >= 1

    def test_submit_many_concurrent_jobs_all_correct(self, cluster):
        """N=4 jobs in flight at once, every output correct."""
        seq = EclipseMRRuntime(4, config=CFG)
        seq.upload("shared.txt", corpus())
        jobs = [
            wordcount_job("shared.txt", app_id="many-wc-0"),
            grep_job("shared.txt", r"word1\b", app_id="many-grep-1"),
            wordcount_job("shared.txt", app_id="many-wc-2"),
            grep_job("shared.txt", r"word2\d", app_id="many-grep-3"),
        ]
        refs = [seq.run(j).output for j in [
            wordcount_job("shared.txt", app_id="many-wc-0"),
            grep_job("shared.txt", r"word1\b", app_id="many-grep-1"),
            wordcount_job("shared.txt", app_id="many-wc-2"),
            grep_job("shared.txt", r"word2\d", app_id="many-grep-3"),
        ]]
        handles = cluster.jobs.submit_many(jobs)
        results = [h.result(timeout=180) for h in handles]
        for res, ref in zip(results, refs):
            assert res.output == ref

    def test_concurrent_same_app_id_jobs_do_not_collide(self, cluster):
        """Two in-flight submissions of the *same* app id: worker-side
        intermediates are namespaced by job_uid, so neither sees the
        other's spills."""
        seq = EclipseMRRuntime(4, config=CFG)
        seq.upload("shared.txt", corpus())
        ref = seq.run(wordcount_job("shared.txt", app_id="same-app")).output

        a = cluster.submit(slow_job("shared.txt", "same-app", delay=0.05))
        b = cluster.submit(slow_job("shared.txt", "same-app", delay=0.05))
        assert a.job_uid != b.job_uid
        assert a.result(timeout=120).output == ref
        assert b.result(timeout=120).output == ref

    def test_cluster_session_context_manager(self):
        cfg = ClusterConfig(dfs=DFSConfig(block_size=2048))
        seq = EclipseMRRuntime(2, config=cfg)
        seq.upload("sess.txt", corpus(5))
        ref = seq.run(wordcount_job("sess.txt", app_id="sess-wc")).output
        grep_ref = seq.run(grep_job("sess.txt", r"word1", app_id="sess-grep")).output
        with ClusterSession(workers=2, config=cfg) as session:
            session.upload("sess.txt", corpus(5))
            handles = session.submit_many([
                wordcount_job("sess.txt", app_id="sess-wc"),
                grep_job("sess.txt", r"word1", app_id="sess-grep"),
            ])
            assert handles[0].result(timeout=120).output == ref
            assert handles[1].result(timeout=120).output == grep_ref


class TestBusyGuards:
    def test_concurrent_blocking_run_raises_cluster_busy(self, cluster):
        first_done = threading.Event()
        results = {}

        def blocking_run():
            results["res"] = cluster.run(slow_job("shared.txt", "busy-a",
                                                  delay=0.3))
            first_done.set()

        t = threading.Thread(target=blocking_run)
        t.start()
        try:
            wait_for(lambda: cluster._run_gate.locked(), what="run() in flight")
            with pytest.raises(ClusterBusyError):
                cluster.run(wordcount_job("shared.txt", app_id="busy-b"))
        finally:
            t.join(timeout=120)
        assert first_done.is_set()
        assert results["res"].stats.map_tasks > 0

    def test_second_scheduler_on_live_cluster_raises(self, cluster):
        assert cluster.jobs is not None  # the cluster's own scheduler runs
        with pytest.raises(ClusterBusyError):
            JobScheduler(cluster)

    def test_submit_still_works_while_run_gate_is_free(self, cluster):
        # The busy gate protects run() only; submit() always multiplexes.
        h = cluster.submit(wordcount_job("shared.txt", app_id="gate-free"))
        assert h.result(timeout=120).stats.map_tasks > 0


class TestAdmissionControl:
    def test_bounded_queue_rejects_and_recovers(self, tight_cluster):
        rt = tight_cluster
        h1 = rt.submit(slow_job("tight.txt", "adm-1", delay=0.5))
        h2 = rt.submit(slow_job("tight.txt", "adm-2", delay=0.5))
        # 1 active slot + 1 queue slot are taken: the third client is
        # pushed back with an explicit error, not an unbounded queue.
        with pytest.raises(JobRejected):
            rt.submit(slow_job("tight.txt", "adm-3", delay=0.5))
        assert rt.metrics.counter("sched.jobs_rejected").value >= 1
        assert rt.metrics.gauge("sched.queue_depth").max_seen >= 1
        # Backpressure clears as jobs drain.
        r1 = h1.result(timeout=120)
        r2 = h2.result(timeout=120)
        assert r1.output == r2.output
        h4 = rt.submit(wordcount_job("tight.txt", app_id="adm-4"))
        assert h4.result(timeout=120).stats.map_tasks > 0
        # The second job waited in the queue and the wait was measured.
        assert rt.metrics.histogram("sched.queue_wait_s").count >= 3

    def test_cancel_queued_job(self, tight_cluster):
        rt = tight_cluster
        h1 = rt.submit(slow_job("tight.txt", "cq-1", delay=0.5))
        h2 = rt.submit(wordcount_job("tight.txt", app_id="cq-2"))
        assert h2.cancel() is True
        with pytest.raises(JobCancelled):
            h2.result(timeout=30)
        assert h2.state is JobState.CANCELLED
        assert h1.result(timeout=120).stats.map_tasks > 0
        assert h2.cancel() is False  # already terminal
        assert rt.metrics.counter("sched.jobs_cancelled").value >= 1

    def test_submit_after_shutdown_raises_then_scheduler_revives(self, tight_cluster):
        rt = tight_cluster
        sched = rt.jobs
        sched.shutdown()
        with pytest.raises(ClusterError):
            sched.submit(wordcount_job("tight.txt", app_id="post-stop"))
        # The runtime transparently attaches a fresh scheduler.
        h = rt.submit(wordcount_job("tight.txt", app_id="revived"))
        assert h.result(timeout=120).stats.map_tasks > 0
        assert rt.jobs is not sched


class TestFailureIsolation:
    def test_one_jobs_mapper_error_does_not_perturb_another(self, cluster):
        seq = EclipseMRRuntime(4, config=CFG)
        seq.upload("shared.txt", corpus())
        ref = seq.run(wordcount_job("shared.txt", app_id="iso-good")).output

        bad = cluster.submit(MapReduceJob(
            app_id="iso-bad", input_file="shared.txt",
            map_fn=boom_map, reduce_fn=wordcount_reduce,
        ))
        good = cluster.submit(slow_job("shared.txt", "iso-good", delay=0.05))
        with pytest.raises(ClusterError, match="run_map"):
            bad.result(timeout=120)
        assert bad.state is JobState.FAILED
        # The survivor is bit-equal to its solo sequential run.
        assert good.result(timeout=120).output == ref
        assert cluster.metrics.counter("sched.jobs_failed").value >= 1

    def test_cancel_mid_flight_leaves_other_job_intact(self, cluster):
        seq = EclipseMRRuntime(4, config=CFG)
        seq.upload("shared.txt", corpus())
        ref = seq.run(wordcount_job("shared.txt", app_id="cx-keep")).output

        doomed = cluster.submit(slow_job("shared.txt", "cx-doomed", delay=0.4))
        keeper = cluster.submit(slow_job("shared.txt", "cx-keep", delay=0.05))
        wait_for(lambda: doomed.state is JobState.RUNNING,
                 what="doomed job to start")
        assert doomed.cancel() is True
        with pytest.raises(JobCancelled):
            doomed.result(timeout=60)
        assert keeper.result(timeout=120).output == ref
        # The cluster is still healthy for the next client.
        again = cluster.submit(wordcount_job("shared.txt", app_id="cx-after"))
        assert again.result(timeout=120).output == ref


class TestPolicySeam:
    """Pure-logic tests of the inter-job policies on synthetic job views."""

    @staticmethod
    def _job(idx, outstanding=0, weight=1.0, tasks=()):
        return SimpleNamespace(submit_index=idx, outstanding=outstanding,
                               weight=weight, ready=list(tasks))

    @staticmethod
    def _task(wid="w0", kind="map", ready_since=0.0, wait_limit=None):
        return SimpleNamespace(kind=kind, wid=wid, ready_since=ready_since,
                               wait_limit=wait_limit, reassign=False)

    @staticmethod
    def _ctx(now=100.0, inflight=None, delay_wait=5.0, slots=2):
        table = inflight or {}
        return DispatchContext(now=lambda: now,
                               inflight_on=lambda w: table.get(w, 0),
                               delay_wait=delay_wait, worker_slots=slots)

    def test_fifo_picks_earliest_submitted(self):
        a = self._job(0, tasks=[self._task()])
        b = self._job(1, tasks=[self._task()])
        assert FifoPolicy().next_task([a, b], self._ctx()) is a.ready[0]

    def test_fair_share_picks_fewest_outstanding_per_weight(self):
        a = self._job(0, outstanding=4, tasks=[self._task()])
        b = self._job(1, outstanding=1, tasks=[self._task()])
        assert FairSharePolicy().next_task([a, b], self._ctx()) is b.ready[0]
        # Weight scales the share: 4 outstanding at weight 8 is a smaller
        # normalized share than 1 outstanding at weight 1.
        a.weight = 8.0
        assert FairSharePolicy().next_task([a, b], self._ctx()) is a.ready[0]
        # Ties go to the earlier submission (lone job degenerates to FIFO).
        a.weight = 4.0
        assert FairSharePolicy().next_task([a, b], self._ctx()) is a.ready[0]

    def test_delay_policy_waits_then_reassigns(self):
        task = self._task(wid="w1", ready_since=99.0)
        job = self._job(0, tasks=[task])
        policy = make_policy("delay")
        # Preferred worker saturated, wait not yet expired: hold the slot.
        busy = self._ctx(now=100.0, inflight={"w1": 2}, slots=2)
        assert policy.next_task([job], busy) is None
        assert task.reassign is False
        # Free slot on the preferred worker: dispatch in place.
        free = self._ctx(now=100.0, inflight={"w1": 1}, slots=2)
        assert policy.next_task([job], free) is task
        # Wait expired while saturated: dispatch with the reassign flag.
        late = self._ctx(now=105.0, inflight={"w1": 2}, slots=2)
        assert policy.next_task([job], late) is task
        assert task.reassign is True

    def test_delay_policy_never_delays_reduce(self):
        task = self._task(wid="w1", kind="reduce", ready_since=100.0)
        job = self._job(0, tasks=[task])
        busy = self._ctx(now=100.0, inflight={"w1": 99})
        assert make_policy("delay").next_task([job], busy) is task

    def test_make_policy_rejects_unknown_name(self):
        with pytest.raises(ConfigError):
            make_policy("lottery")

    def test_fair_share_cluster_jobs_all_correct(self):
        """End-to-end under the fair-share policy: N concurrent jobs on
        one small cluster, every output correct."""
        cfg = ClusterConfig(
            dfs=DFSConfig(block_size=2048),
            jobs=JobsConfig(policy="fair", max_active_jobs=4),
        )
        seq = EclipseMRRuntime(2, config=cfg)
        seq.upload("fair.txt", corpus(13))
        ref = seq.run(wordcount_job("fair.txt", app_id="fair-0")).output
        with ClusterRuntime(2, cfg) as rt:
            rt.upload("fair.txt", corpus(13))
            assert isinstance(rt.jobs.policy, FairSharePolicy)
            handles = rt.jobs.submit_many([
                slow_job("fair.txt", f"fair-{i}", delay=0.05) for i in range(3)
            ])
            for h in handles:
                assert h.result(timeout=120).output == ref
