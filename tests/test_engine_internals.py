"""Unit tests for PerfEngine internals and cross-cutting sim properties."""

import pytest

from repro.common.config import CacheConfig, ClusterConfig, DFSConfig, SchedulerConfig
from repro.common.units import GB, MB
from repro.perfmodel.engine import PerfEngine, SimJobSpec
from repro.perfmodel.framework import eclipse_framework, hadoop_framework, spark_framework
from repro.perfmodel.placement import dht_layout
from repro.perfmodel.profiles import APP_PROFILES, AppProfile


def small_engine(framework=None, nodes=4):
    config = ClusterConfig(
        num_nodes=nodes,
        rack_size=max(1, nodes // 2),
        map_slots_per_node=2,
        reduce_slots_per_node=2,
        dfs=DFSConfig(block_size=128 * MB),
        cache=CacheConfig(capacity_per_server=1 * GB, icache_fraction=1.0),
        scheduler=SchedulerConfig(window_tasks=16),
        page_cache_per_node=1 * GB,
    )
    return PerfEngine(config, framework or eclipse_framework())


class TestCpuScale:
    def test_native_framework_always_one(self):
        engine = small_engine(eclipse_framework())
        for app in APP_PROFILES.values():
            assert engine._cpu_scale(app) == pytest.approx(1.0)

    def test_jvm_fully_sensitive_app(self):
        engine = small_engine(spark_framework())
        assert engine._cpu_scale(APP_PROFILES["kmeans"]) == pytest.approx(2.0)

    def test_jvm_insensitive_app(self):
        engine = small_engine(spark_framework())
        assert engine._cpu_scale(APP_PROFILES["pagerank"]) == pytest.approx(1.0)

    def test_partial_sensitivity(self):
        engine = small_engine(hadoop_framework())
        # wordcount: 0.7 sensitive at 0.5 efficiency -> 0.7/0.5 + 0.3 = 1.7
        assert engine._cpu_scale(APP_PROFILES["wordcount"]) == pytest.approx(1.7)


class TestRingNeighbors:
    def test_neighbors_follow_ring_order(self):
        engine = small_engine()
        order = engine._ring_order
        for i, node in enumerate(order):
            assert engine._ring_neighbor(node, 1) == order[(i + 1) % len(order)]
            assert engine._ring_neighbor(node, 2) == order[(i + 2) % len(order)]

    def test_neighbor_zero_is_self(self):
        engine = small_engine()
        for node in range(4):
            assert engine._ring_neighbor(node, 0) == node


class TestShuffleDestinations:
    def test_round_robin_covers_all_nodes(self):
        engine = small_engine()
        dests = [engine._next_shuffle_dest() for _ in range(8)]
        assert dests == [0, 1, 2, 3, 0, 1, 2, 3]


class TestBlockCpuMultiplier:
    def test_deterministic(self):
        app = APP_PROFILES["pagerank"]
        assert app.block_cpu_multiplier("b1") == app.block_cpu_multiplier("b1")

    def test_no_skew_is_identity(self):
        assert APP_PROFILES["grep"].block_cpu_multiplier("anything") == 1.0

    def test_mean_near_one(self):
        import numpy as np

        app = APP_PROFILES["pagerank"]
        ms = [app.block_cpu_multiplier(f"x{i}") for i in range(4000)]
        assert np.mean(ms) == pytest.approx(1.0, abs=0.06)
        assert min(ms) > 0


class TestDeterminism:
    def test_identical_runs_produce_identical_timings(self):
        """The whole simulation is deterministic: same config, same result."""
        def once():
            engine = small_engine()
            blocks = dht_layout(engine.space, engine.ring, "in", 12, 128 * MB)
            t = engine.run_job(
                SimJobSpec(app=APP_PROFILES["wordcount"], tasks=blocks, label="wc")
            )
            return t.makespan, t.tasks_per_server, t.bytes_shuffled

        assert once() == once()

    def test_deterministic_across_frameworks(self):
        for fw_factory in (eclipse_framework, hadoop_framework, spark_framework):
            def once():
                engine = small_engine(fw_factory())
                blocks = dht_layout(engine.space, engine.ring, "in", 8, 128 * MB)
                return engine.run_job(
                    SimJobSpec(app=APP_PROFILES["grep"], tasks=blocks)
                ).makespan

            assert once() == pytest.approx(once())


class TestNetworkConservation:
    def test_bytes_transferred_equals_flow_sizes(self):
        """Fluid-flow bookkeeping: completed bytes equal requested bytes."""
        from repro.sim.engine import AllOf, Simulation
        from repro.sim.network import Network

        sim = Simulation()
        net = Network(sim, num_nodes=6, rack_size=3, node_bandwidth=100.0,
                      uplink_bandwidth=80.0, latency=0.001)
        sizes = [1000, 2500, 100, 4000, 333]
        pairs = [(0, 3), (1, 4), (2, 5), (5, 0), (3, 1)]

        def one(sim, net, src, dst, n):
            yield net.transfer(src, dst, n)

        def body(sim, net):
            yield AllOf([
                sim.process(one(sim, net, s, d, n)) for (s, d), n in zip(pairs, sizes)
            ])

        sim.run(sim.process(body(sim, net)))
        assert net.flows_completed == len(sizes)
        assert net.bytes_transferred == pytest.approx(sum(sizes))
        assert net.active_flows == 0

    def test_disk_accounting_matches_work(self):
        engine = small_engine()
        blocks = dht_layout(engine.space, engine.ring, "in", 8, 128 * MB)
        engine.run_job(SimJobSpec(app=APP_PROFILES["grep"], tasks=blocks))
        read = sum(n.disk.bytes_read for n in engine.cluster.nodes)
        # Cold run: every block read from a disk exactly once.
        assert read == 8 * 128 * MB
