"""Unit tests for application profiles and framework models."""

import pytest

from repro.common.hashing import HashSpace
from repro.common.units import GB, KB, MB
from repro.dht.ring import ConsistentHashRing
from repro.perfmodel.framework import (
    eclipse_framework,
    hadoop_framework,
    spark_framework,
)
from repro.perfmodel.profiles import APP_PROFILES, AppProfile
from repro.scheduler.delay import DelayScheduler
from repro.scheduler.fair import FairScheduler
from repro.scheduler.laf import LAFScheduler


class TestAppProfiles:
    def test_all_seven_apps_present(self):
        assert set(APP_PROFILES) == {
            "grep", "sort", "wordcount", "invertedindex",
            "kmeans", "logreg", "pagerank",
        }

    def test_cpu_seconds(self):
        p = APP_PROFILES["wordcount"]
        assert p.map_cpu_seconds(35 * MB) == pytest.approx(1.0)
        assert p.reduce_cpu_seconds(80 * MB) == pytest.approx(1.0)

    def test_sort_shuffles_everything(self):
        assert APP_PROFILES["sort"].shuffle_ratio == 1.0

    def test_kmeans_iteration_output_is_tiny(self):
        p = APP_PROFILES["kmeans"]
        assert p.iteration_output_bytes(250 * GB) == p.iteration_output_floor
        assert p.iteration_output_floor <= 4 * KB

    def test_pagerank_iteration_output_matches_input(self):
        p = APP_PROFILES["pagerank"]
        assert p.iteration_output_bytes(15 * GB) == 15 * GB

    def test_iterative_apps_compute_heavier_than_grep(self):
        for app in ("kmeans", "logreg", "pagerank"):
            assert APP_PROFILES[app].map_rate < APP_PROFILES["grep"].map_rate

    def test_jvm_sensitivity_bounds(self):
        for p in APP_PROFILES.values():
            assert 0.0 <= p.jvm_sensitivity <= 1.0
        # The paper credits C++ speed specifically for kmeans/logreg.
        assert APP_PROFILES["kmeans"].jvm_sensitivity == 1.0
        assert APP_PROFILES["pagerank"].jvm_sensitivity == 0.0


class TestFrameworkModels:
    def _ring(self, n=4):
        space = HashSpace(1 << 32)
        ring = ConsistentHashRing(space)
        servers = list(range(n))
        for i in servers:
            ring.add_node(i, space.key_of(f"node-{i}"))
        return space, servers, ring

    def test_eclipse_laf_scheduler(self):
        space, servers, ring = self._ring()
        fw = eclipse_framework("laf")
        sched = fw.make_scheduler(space, servers, ring)
        assert isinstance(sched, LAFScheduler)
        assert fw.shuffle_mode == "proactive"
        assert not fw.metadata_central
        assert fw.task_overhead < 1.0

    def test_eclipse_delay_scheduler(self):
        space, servers, ring = self._ring()
        fw = eclipse_framework("delay")
        sched = fw.make_scheduler(space, servers, ring)
        assert isinstance(sched, DelayScheduler)
        assert sched.ring is ring

    def test_eclipse_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            eclipse_framework("fifo")

    def test_hadoop_model(self):
        space, servers, ring = self._ring()
        fw = hadoop_framework()
        assert isinstance(fw.make_scheduler(space, servers, ring), FairScheduler)
        assert fw.task_overhead == 7.0  # the paper's YARN container cost
        assert fw.metadata_central
        assert fw.shuffle_mode == "pull"
        assert not fw.cache_input_blocks
        assert fw.replication == 3

    def test_spark_model(self):
        space, servers, ring = self._ring()
        fw = spark_framework()
        sched = fw.make_scheduler(space, servers, ring)
        assert isinstance(sched, DelayScheduler)
        assert sched.config.delay_wait == 5.0
        assert fw.shuffle_mode == "memory"
        assert not fw.persist_iteration_outputs
        assert fw.rdd_build_rate > 0
        assert fw.cache_input_blocks

    def test_jvm_frameworks_slower_compute(self):
        assert eclipse_framework().compute_efficiency == 1.0
        assert hadoop_framework().compute_efficiency < 1.0
        assert spark_framework().compute_efficiency < 1.0

    def test_laf_ring_alignment(self):
        """The initial LAF hash key table matches the ring's arcs exactly
        (rotated partition), so first-touch reads are node-local."""
        space, servers, ring = self._ring(8)
        sched = LAFScheduler(space, servers, ring=ring)
        for i in range(400):
            key = space.key_of(f"probe{i}")
            assert sched.partition.owner_of(key) == ring.owner_of(key)

    def test_laf_ring_mismatch_rejected(self):
        from repro.common.errors import SchedulingError

        space, servers, ring = self._ring(4)
        with pytest.raises(SchedulingError):
            LAFScheduler(space, ["not-on-ring"], ring=ring)
