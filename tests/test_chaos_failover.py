"""Chaos plane + surgical failover: the PR's headline behaviors.

Three layers, cheapest first:

* unit tests for :class:`~repro.chaos.plane.FaultInjector` (rule windows,
  determinism, crash/delay effects via injected ``exit_fn``/``sleep``)
  and the chaos config's wire round-trip;
* transport-seam tests against a real :class:`RpcServer` +
  :class:`ConnectionPool` (drop fails fast, blackhole and serve-drop
  both end in the caller's timeout -- the one-way partition shape);
* cluster integration: SIGKILL mid-job salvages every completed map
  whose spills live on survivors and re-executes *only* the doomed ones;
  a scripted one-way partition (victim heartbeats, coordinator's sends
  dropped) is detected by unreachability and replays the identical fault
  schedule under a fixed seed; a second worker crashing on its first
  ``restore_block`` mid-re-replication cascades through failover without
  failing the job.

``CHAOS_SEED`` (CI's chaos-matrix runs 0/1/2) seeds every scripted
scenario; any seed must pass -- determinism is asserted *within* a seed.
"""

import json
import os
import time

import pytest

from repro.apps.wordcount import wordcount_job
from repro.apps.workloads import pack_records, text_corpus
from repro.chaos import FaultInjector, partition_rules
from repro.cluster import ClusterRuntime
from repro.common.config import (
    ChaosConfig,
    ClusterConfig,
    DFSConfig,
    FaultRule,
    NetConfig,
)
from repro.common.errors import (
    ClusterError,
    ConfigError,
    RpcConnectionError,
    RpcTimeout,
)
from repro.common.hashing import DEFAULT_SPACE
from repro.common.serialization import config_from_dict, config_to_dict
from repro.dht.ring import ConsistentHashRing
from repro.mapreduce.runtime import EclipseMRRuntime
from repro.net.retry import RetryPolicy
from repro.net.rpc import ConnectionPool, RpcServer
from repro.sim.metrics import MetricsRegistry

SEED = int(os.environ.get("CHAOS_SEED", "0"))

BLOCK = 2048
CFG = ClusterConfig(dfs=DFSConfig(block_size=BLOCK))
WORKERS = [f"worker-{i}" for i in range(4)]


def _ring(worker_ids):
    """The exact ring every coordinator builds for these worker ids."""
    ring = ConsistentHashRing(DEFAULT_SPACE)
    for wid in worker_ids:
        ring.add_node(wid)
    return ring


def _word_owner(ring, word: str):
    """Where a wordcount intermediate key lands (SpillBuffer routes by
    ``space.key_of(repr(key))``)."""
    return ring.owner_of(DEFAULT_SPACE.key_of(repr(word)))


def corpus() -> bytes:
    return pack_records(text_corpus(99, num_words=3000, vocab_size=60), BLOCK)


# -- config plumbing ---------------------------------------------------------------


class TestChaosConfig:
    def test_fault_rule_validation(self):
        with pytest.raises(ConfigError):
            FaultRule(op="truncate")
        with pytest.raises(ConfigError):
            FaultRule(op="drop", site="wire")
        with pytest.raises(ConfigError):
            FaultRule(op="blackhole", site="serve")  # send-side only
        with pytest.raises(ConfigError):
            FaultRule(op="drop", after_n=-1)
        with pytest.raises(ConfigError):
            FaultRule(op="drop", count=0)
        with pytest.raises(ConfigError):
            FaultRule(op="delay", delay_s=-0.1)
        with pytest.raises(ConfigError):
            FaultRule(op="drop", probability=1.5)

    def test_chaos_config_rejects_non_rules(self):
        with pytest.raises(ConfigError):
            ChaosConfig(rules=({"op": "drop"},))

    def test_active_only_with_rules(self):
        assert not ChaosConfig().active
        assert ChaosConfig(rules=(FaultRule(op="drop"),)).active

    def test_rules_survive_the_manifest_round_trip(self):
        """Chaos scripts ride the config manifest into spawned workers, so
        they must survive ``config_to_dict`` -> JSON -> ``config_from_dict``."""
        cfg = ClusterConfig(chaos=ChaosConfig(seed=11, rules=(
            FaultRule(op="drop", site="send", src="coordinator",
                      dst="worker-1", method="discard_job", count=3),
            FaultRule(op="crash", site="serve", dst="worker-2",
                      method="restore_block", after_n=1, count=1),
            FaultRule(op="delay", delay_s=0.25, probability=0.5),
        )))
        wire = json.loads(json.dumps(config_to_dict(cfg)))
        back = config_from_dict(wire)
        assert back.chaos == cfg.chaos

    def test_unknown_rule_keys_rejected(self):
        wire = config_to_dict(ClusterConfig())
        wire["chaos"] = {"seed": 0, "rules": [{"op": "drop", "sit": "send"}]}
        with pytest.raises(ConfigError, match="unknown chaos rule keys"):
            config_from_dict(wire)

    def test_partition_rules_shape(self):
        (rule,) = partition_rules("worker-3", heal_after=5)
        assert (rule.op, rule.site, rule.dst, rule.count) == \
            ("drop", "send", "worker-3", 5)
        assert rule.src == "*" and rule.method == "*"


# -- the injector ------------------------------------------------------------------


class TestFaultInjector:
    def test_window_after_n_and_count(self):
        inj = FaultInjector("node", ChaosConfig(rules=(
            FaultRule(op="drop", site="serve", dst="node", method="m",
                      after_n=1, count=2),
        )))
        assert [inj.on_serve("m") for _ in range(5)] == \
            [None, "drop", "drop", None, None]
        assert inj.fault_counts() == [5]  # window checks count as matches
        assert [entry[5] for entry in inj.schedule()] == [1, 2]

    def test_method_and_name_matching(self):
        inj = FaultInjector("coordinator", ChaosConfig(rules=(
            FaultRule(op="drop", site="send", dst="victim", method="run_map"),
        )))
        inj.bind("victim", ("127.0.0.1", 9001))
        assert inj.name_of(("127.0.0.1", 9001)) == "victim"
        assert inj.name_of(("127.0.0.1", 9002)) == "?"
        assert inj.on_send(("127.0.0.1", 9001), "run_map") == "drop"
        assert inj.on_send(("127.0.0.1", 9001), "heartbeat") is None
        assert inj.on_send(("127.0.0.1", 9002), "run_map") is None

    def test_first_drop_ends_evaluation(self):
        sleeps = []
        inj = FaultInjector("node", ChaosConfig(rules=(
            FaultRule(op="drop", site="send"),
            FaultRule(op="delay", site="send", delay_s=9.0),
        )), sleep=sleeps.append)
        assert inj.on_send(("h", 1), "m") == "drop"
        assert sleeps == []  # the delay rule was never reached

    def test_send_delay_is_returned_not_slept(self):
        """Send-seam delays must never block the caller's thread (the
        scheduler's single event loop runs there): they come back as a
        ``("delay", seconds)`` action for the transport to defer, and
        consecutive delay rules accumulate."""
        sleeps = []
        inj = FaultInjector("node", ChaosConfig(rules=(
            FaultRule(op="delay", site="send", delay_s=0.75),
            FaultRule(op="delay", site="send", delay_s=0.25),
        )), sleep=sleeps.append)
        assert inj.on_send(("h", 1), "m") == ("delay", pytest.approx(1.0))
        assert sleeps == []  # the caller's thread never slept
        assert [entry[4] for entry in inj.schedule()] == ["delay", "delay"]

    def test_serve_delay_sleeps_in_place(self):
        """Serve-seam delays stall only the faulted request's handler
        thread, so sleeping in place is correct there."""
        sleeps = []
        inj = FaultInjector("node", ChaosConfig(rules=(
            FaultRule(op="delay", site="serve", dst="node", delay_s=0.5),
        )), sleep=sleeps.append)
        assert inj.on_serve("m") is None
        assert sleeps == [pytest.approx(0.5)]

    def test_delay_keeps_scanning_and_drop_subsumes_it(self):
        sleeps = []
        inj = FaultInjector("node", ChaosConfig(rules=(
            FaultRule(op="delay", site="send", delay_s=0.75),
            FaultRule(op="blackhole", site="send", method="m"),
        )), sleep=sleeps.append)
        assert inj.on_send(("h", 1), "m") == "blackhole"
        assert sleeps == []  # the call dies anyway: no deferred delay survives
        assert [entry[4] for entry in inj.schedule()] == ["delay", "blackhole"]

    def test_crash_uses_the_injected_exit(self):
        exits = []
        metrics = MetricsRegistry()
        inj = FaultInjector("node", ChaosConfig(rules=(
            FaultRule(op="crash", site="serve", dst="node", method="m", count=1),
        )), metrics=metrics, exit_fn=exits.append)
        assert inj.on_serve("m") is None  # non-exiting exit_fn: scan continues
        assert exits == [137]  # SIGKILL-grade status
        assert metrics.counter("chaos.crash").value == 1
        assert metrics.counter("chaos.faults_injected").value == 1

    def test_probabilistic_rules_replay_under_one_seed(self):
        def fire(seed, n=64):
            inj = FaultInjector("node", ChaosConfig(seed=seed, rules=(
                FaultRule(op="drop", site="send", probability=0.5),
            )))
            return [inj.on_send(("h", 1), "m") for _ in range(n)], inj.schedule()

        first, sched_first = fire(SEED)
        again, sched_again = fire(SEED)
        other, _ = fire(SEED + 1)
        assert first == again and sched_first == sched_again
        assert first != other  # a different seed draws a different schedule
        assert 0 < first.count("drop") < len(first)  # p=0.5 actually mixes

    def test_each_node_draws_its_own_stream(self):
        cfg = ChaosConfig(seed=SEED, rules=(
            FaultRule(op="drop", site="send", probability=0.5),
        ))

        def fire(node):
            inj = FaultInjector(node, cfg)
            return [inj.on_send(("h", 1), "m") for _ in range(64)]

        assert fire("worker-0") != fire("worker-1")


# -- the transport seams -----------------------------------------------------------


@pytest.fixture()
def echo_server():
    metrics = MetricsRegistry()
    srv = RpcServer({"echo": lambda value: value}, net=NetConfig(),
                    metrics=metrics).start()
    yield srv, metrics
    srv.stop()


def _fast_policy(attempts: int = 2) -> RetryPolicy:
    return RetryPolicy(attempts=attempts, base_delay=0.01, max_delay=0.02,
                       jitter=0.0, sleep=lambda _s: None)


class TestTransportSeams:
    def test_send_drop_is_a_retried_connection_error(self, echo_server):
        srv, _ = echo_server
        metrics = MetricsRegistry()
        inj = FaultInjector("coordinator", ChaosConfig(seed=SEED, rules=(
            FaultRule(op="drop", site="send", dst="victim", method="echo"),
        )), metrics=metrics)
        inj.bind("victim", srv.address)
        pool = ConnectionPool(NetConfig(), metrics=metrics,
                              policy=_fast_policy(attempts=2))
        pool.fault_hook = inj.on_send
        try:
            with pytest.raises(RpcConnectionError, match="dropped by fault injection"):
                pool.call(srv.address, "echo", {"value": 1})
            assert metrics.counter("net.sends_dropped").value == 2  # both attempts
            assert metrics.counter("chaos.drop").value == 2
        finally:
            pool.close_all()

    def test_blackhole_times_the_caller_out(self, echo_server):
        srv, _ = echo_server
        metrics = MetricsRegistry()
        inj = FaultInjector("coordinator", ChaosConfig(seed=SEED, rules=(
            FaultRule(op="blackhole", site="send", method="echo", count=1),
        )), metrics=metrics)
        pool = ConnectionPool(NetConfig(), metrics=metrics,
                              policy=_fast_policy())
        pool.fault_hook = inj.on_send
        try:
            with pytest.raises(RpcTimeout):
                pool.call(srv.address, "echo", {"value": 1}, timeout=0.3)
            assert metrics.counter("net.sends_blackholed").value == 1
            assert metrics.counter("rpc.retries").value == 0  # timeouts never retry
            # The window expired: the connection itself is healthy.
            assert pool.call(srv.address, "echo", {"value": 2}) == 2
        finally:
            pool.close_all()

    def test_serve_drop_swallows_the_request(self, echo_server):
        srv, srv_metrics = echo_server
        inj = FaultInjector("victim", ChaosConfig(seed=SEED, rules=(
            FaultRule(op="drop", site="serve", dst="victim", method="echo",
                      count=1),
        )), metrics=srv_metrics)
        srv.fault_hook = inj.on_serve
        pool = ConnectionPool(NetConfig(), policy=_fast_policy())
        try:
            # The request reaches the server and dies there -- the sender
            # sees only silence, exactly a one-way partition.
            with pytest.raises(RpcTimeout):
                pool.call(srv.address, "echo", {"value": 1}, timeout=0.3)
            assert srv_metrics.counter("rpc.requests_swallowed").value == 1
            assert pool.call(srv.address, "echo", {"value": 2}) == 2  # healed
        finally:
            srv.fault_hook = None
            pool.close_all()


# -- surgical failover (the headline) ----------------------------------------------


class TestSurgicalFailover:
    def test_kill_after_map_phase_salvages_survivor_spills(self):
        """SIGKILL a worker after every map completed: only the maps whose
        spills the victim *held* re-execute; the rest are salvaged, the
        lost block copies re-replicate batched, and the output stays
        bit-equal to the sequential runtime."""
        # One distinct word per block => each map's spills land on exactly
        # one destination, so the salvage split is fully predictable.
        ring = _ring(WORKERS)
        candidates = [f"w{i:02d}" for i in range(100)]
        victim = _word_owner(ring, candidates[0])
        victim_words = [w for w in candidates if _word_owner(ring, w) == victim][:3]
        other_words = [w for w in candidates if _word_owner(ring, w) != victim][:5]
        words = victim_words + other_words
        assert len(words) == 8
        data = pack_records([((w + " ") * 400).encode() for w in words], BLOCK)
        assert len(data) == 8 * BLOCK  # one record per 2048-byte block

        seq = EclipseMRRuntime(4, config=CFG)
        seq.upload("surgical.txt", data)
        ref = seq.run(wordcount_job("surgical.txt", app_id="wc-surgical"))
        assert ref.output == {w: 400 for w in words}

        with ClusterRuntime(4, CFG) as rt:
            rt.upload("surgical.txt", data)
            victim_blocks = [bid for bid, hs in rt.coordinator.holders.items()
                             if victim in hs]
            assert victim_blocks  # 3-of-4 placement: it holds something

            killed = []

            def chaos(done_maps):
                if done_maps == len(words) and not killed:
                    rt.kill_worker(victim)
                    killed.append(victim)

            rt.on_map_complete = chaos
            res = rt.run(wordcount_job("surgical.txt", app_id="wc-surgical"))
            m = rt.metrics

            assert killed, "chaos hook never fired"
            assert res.output == ref.output  # bit-equal despite the kill
            assert victim not in rt.worker_ids

            # The surgical split: 5 maps salvaged in place, exactly the 3
            # victim-destined maps re-executed -- strictly fewer than the
            # 8 that had completed when the worker died.
            assert m.counter("failover.tasks_salvaged").value == 5
            assert m.counter("cluster.tasks_reexecuted").value == 3
            assert m.counter("failover.tasks_reexecuted").value == 3
            assert res.stats.task_retries == 3
            assert res.stats.map_tasks == 8  # every block exactly one outcome
            assert m.counter("cluster.failovers").value == 1

            # Batched adaptive re-replication: one new copy per block the
            # victim held (3 survivors = full replica set), shipped in at
            # most one batch per surviving target, byte-accounted both as
            # a counter and a per-batch histogram.
            assert m.counter("failover.blocks_rereplicated").value == \
                len(victim_blocks)
            batches = m.counter("failover.rereplication_batches").value
            assert 1 <= batches <= min(3, len(victim_blocks))
            total_bytes = len(victim_blocks) * BLOCK
            assert m.counter("failover.bytes_rereplicated").value == total_bytes
            assert m.histogram("failover.rereplication_batch_bytes").total() == \
                total_bytes


# -- one-way partition, scripted and deterministic ---------------------------------


def _run_partitioned(seed: int) -> dict:
    """A one-way partition: worker-2 heartbeats normally, but everything
    the coordinator sends it for this job is dropped at the send seam.
    Returns a determinism fingerprint of the run."""
    victim = "worker-2"
    rules = (
        FaultRule(op="drop", site="send", src="coordinator", dst=victim,
                  method="discard_job"),
        FaultRule(op="drop", site="send", src="coordinator", dst=victim,
                  method="run_map"),
    )
    cfg = ClusterConfig(dfs=DFSConfig(block_size=BLOCK),
                        chaos=ChaosConfig(seed=seed, rules=rules))
    with ClusterRuntime(4, cfg) as rt:
        rt.upload("part.txt", corpus())
        res = rt.run(wordcount_job("part.txt", app_id="wc-part"))
        m = rt.metrics
        return {
            "schedule": tuple(rt.chaos.schedule()),
            "alive": tuple(rt.worker_ids),
            "failovers": m.counter("cluster.failovers").value,
            "missed_deadlines": m.counter("heartbeat.missed_deadlines").value,
            "sends_dropped": m.counter("net.sends_dropped").value,
            "salvaged": m.counter("failover.tasks_salvaged").value,
            "reexecuted": m.counter("cluster.tasks_reexecuted").value,
            "blocks_rereplicated":
                m.counter("failover.blocks_rereplicated").value,
            "output": tuple(sorted(res.output.items())),
        }


class TestOneWayPartition:
    def test_partition_detected_by_unreachability_and_replays_exactly(self):
        first = _run_partitioned(SEED)

        # The job completed on the survivors.
        assert sum(count for _w, count in first["output"]) == 3000
        assert "worker-2" not in first["alive"]
        assert first["failovers"] == 1
        # The victim heartbeated throughout: detection came from the
        # dropped sends, never from heartbeat silence.
        assert first["missed_deadlines"] == 0
        # Exactly the start-of-attempt broadcast's transport attempts were
        # dropped (the pool's full retry budget), then failover removed the
        # victim before any map was assigned to it.
        assert first["sends_dropped"] == 3
        assert first["schedule"] == tuple(
            ("send", "coordinator", "worker-2", "discard_job", "drop", n)
            for n in range(3)
        )

        # Same seed, same script => the same fault schedule, the same
        # recovery metrics, and the same output -- run for run.
        assert _run_partitioned(SEED) == first

    def test_blanket_partition_from_startup_fails_over_before_the_job(self):
        """A permanent one-way partition active from process start: the
        victim registers and heartbeats, but the coordinator's very first
        sends to it (the startup ring broadcast) die.  Pre-job control
        operations ride the failover loop -- the cluster comes up on the
        survivors and upload + job complete without the caller seeing a
        ``WorkerLost``."""
        victim = "worker-1"
        cfg = ClusterConfig(
            dfs=DFSConfig(block_size=BLOCK),
            chaos=ChaosConfig(seed=SEED, rules=partition_rules(victim)),
        )
        with ClusterRuntime(4, cfg) as rt:
            assert victim not in rt.worker_ids  # removed during __init__
            rt.upload("blanket.txt", corpus())
            res = rt.run(wordcount_job("blanket.txt", app_id="wc-blanket"))
            m = rt.metrics
            assert sum(res.output.values()) == 3000
            assert m.counter("cluster.failovers").value == 1
            assert m.counter("heartbeat.missed_deadlines").value == 0
            # The startup broadcast's full retry budget, and nothing else:
            # after failover no send ever targets the victim again.
            assert m.counter("net.sends_dropped").value == 3
            assert tuple(rt.chaos.schedule()) == tuple(
                ("send", "coordinator", victim, "update_ring", "drop", n)
                for n in range(3)
            )


# -- compound failure: a crash mid-re-replication ----------------------------------


class TestCascadedFailover:
    def test_second_death_during_rereplication_cascades(self):
        """The first victim is SIGKILLed; while the coordinator re-copies
        its blocks, the chosen re-replication *target* crashes on the
        first ``restore_block`` it serves.  The failover must cascade --
        absorb the second death inside the first recovery -- and the job
        still completes on the remaining two workers at full (two-copy)
        replication."""
        data = corpus()
        nblocks = len(data) // BLOCK
        victim1 = "worker-0"
        # Offline placement math (placement is deterministic): for each
        # block victim1 holds, the post-failover ring adds exactly one new
        # holder.  The first such target receives the first restore batch.
        ring = _ring(WORKERS)
        ring2 = _ring([w for w in WORKERS if w != victim1])
        victim2 = None
        for i in range(nblocks):
            key = DEFAULT_SPACE.block_key("cascade.txt", i)
            holders = ring.replica_set(key, extra=CFG.dfs.replication)
            if victim1 not in holders:
                continue
            targets = ring2.replica_set(key, extra=CFG.dfs.replication)
            missing = [t for t in targets if t not in holders]
            assert len(missing) == 1
            if victim2 is None:
                victim2 = missing[0]
        assert victim2 is not None and victim2 != victim1

        cfg = ClusterConfig(dfs=DFSConfig(block_size=BLOCK),
                            chaos=ChaosConfig(seed=SEED, rules=(
                                FaultRule(op="crash", site="serve", dst=victim2,
                                          method="restore_block", count=1),
                            )))
        with ClusterRuntime(4, cfg) as rt:
            rt.upload("cascade.txt", data)
            rt.kill_worker(victim1)
            res = rt.run(wordcount_job("cascade.txt", app_id="wc-cascade"))
            m = rt.metrics

            assert sum(res.output.values()) == 3000
            survivors = sorted(set(WORKERS) - {victim1, victim2})
            assert sorted(rt.worker_ids) == survivors
            assert m.counter("cluster.failovers").value == 2
            assert m.counter("cluster.workers_killed").value == 1  # only victim1
            # The post-cascade sweep healed every hole the second death
            # tore open: on a two-node ring, full replication means both
            # survivors hold every block.
            for bid, holders in rt.coordinator.holders.items():
                assert sorted(holders) == survivors, bid


# -- elastic membership under chaos ------------------------------------------------


class TestElasticMembershipChaos:
    """Join/drain racing jobs, failovers, and a SIGKILLed joiner.

    Membership ops queue at the job scheduler's quiesce barrier, so a
    request landing mid-job must not perturb that job at all -- its
    output and task placement stay bit-equal to a run with no request.
    """

    def test_join_during_job_waits_for_quiesce(self):
        data = corpus()
        seq = EclipseMRRuntime(4, config=CFG)
        seq.upload("joinjob.txt", data)
        ref = seq.run(wordcount_job("joinjob.txt", app_id="wc-joinjob"))

        with ClusterRuntime(4, CFG) as rt:
            rt.upload("joinjob.txt", data)
            futs = []

            def chaos(done_maps):
                if done_maps == 3 and not futs:
                    futs.append(rt.join_worker(wait=False))

            rt.on_map_complete = chaos
            res = rt.run(wordcount_job("joinjob.txt", app_id="wc-joinjob"))
            assert futs, "chaos hook never fired"
            assert futs[0].result(timeout=90) == "worker-4"
            m = rt.metrics

            # The in-flight job never saw the joiner: bit-equal to the
            # sequential 4-worker run, joiner absent from its placement.
            assert res.output == ref.output
            assert res.stats.tasks_per_server == ref.stats.tasks_per_server
            assert "worker-4" not in res.stats.tasks_per_server

            assert "worker-4" in rt.worker_ids
            assert m.counter("membership.joins").value == 1
            assert m.counter("membership.blocks_handed_off").value > 0
            assert m.counter("cluster.failovers").value == 0
            # The grown cluster still answers correctly.
            res2 = rt.run(wordcount_job("joinjob.txt", app_id="wc-joinjob-2"))
            assert res2.output == ref.output

    def test_join_queued_during_failover_applies_after_recovery(self):
        data = corpus()
        with ClusterRuntime(4, CFG) as rt:
            rt.upload("joinfail.txt", data)
            futs = []

            def chaos(done_maps):
                if done_maps == 3 and not futs:
                    rt.kill_worker(rt.worker_ids[-1])
                    futs.append(rt.join_worker(wait=False))

            rt.on_map_complete = chaos
            res = rt.run(wordcount_job("joinfail.txt", app_id="wc-joinfail"))
            assert futs, "chaos hook never fired"
            joined = futs[0].result(timeout=90)
            m = rt.metrics

            # Failover first (death evidence preempts the barrier), join
            # after: 3 survivors plus the joiner.
            assert sum(res.output.values()) == 3000
            assert m.counter("cluster.failovers").value == 1
            assert m.counter("membership.joins").value == 1
            assert joined in rt.worker_ids
            assert len(rt.worker_ids) == 4
            res2 = rt.run(wordcount_job("joinfail.txt", app_id="wc-joinfail-2"))
            assert res2.output == res.output

    def test_drain_during_job_finishes_first_without_failover(self):
        data = corpus()
        drainee = "worker-1"
        seq = EclipseMRRuntime(4, config=CFG)
        seq.upload("drainjob.txt", data)
        ref = seq.run(wordcount_job("drainjob.txt", app_id="wc-drainjob"))

        with ClusterRuntime(4, CFG) as rt:
            rt.upload("drainjob.txt", data)
            futs = []

            def chaos(done_maps):
                if done_maps == 3 and not futs:
                    futs.append(rt.drain_worker(drainee, wait=False))

            rt.on_map_complete = chaos
            res = rt.run(wordcount_job("drainjob.txt", app_id="wc-drainjob"))
            assert futs, "chaos hook never fired"
            assert futs[0].result(timeout=90) == drainee
            m = rt.metrics

            # The drainee participated in the whole job (bit-equal to the
            # no-drain run), then left cleanly: no failover budget spent.
            assert res.output == ref.output
            assert res.stats.tasks_per_server == ref.stats.tasks_per_server
            assert drainee not in rt.worker_ids
            assert m.counter("membership.drains").value == 1
            assert m.counter("membership.blocks_handed_off").value > 0
            assert m.counter("cluster.failovers").value == 0
            res2 = rt.run(wordcount_job("drainjob.txt", app_id="wc-drainjob-2"))
            assert res2.output == ref.output

    def test_joiner_killed_mid_handoff_aborts_the_join(self):
        """The joiner crashes serving its first ``restore_block``: the
        join aborts, rolls back completely, and the old cluster keeps
        working with zero failover spend."""
        joiner = "worker-4"
        data = corpus()
        nblocks = len(data) // BLOCK
        # Deterministic placement: the joiner's arc really does take over
        # block targets, so the handoff (and therefore the crash) happens.
        ring5 = _ring(WORKERS + [joiner])
        takes = [i for i in range(nblocks)
                 if joiner in ring5.replica_set(
                     DEFAULT_SPACE.block_key("joincrash.txt", i),
                     extra=CFG.dfs.replication)]
        assert takes, "test corpus never targets the joiner; grow it"

        cfg = ClusterConfig(dfs=DFSConfig(block_size=BLOCK),
                            chaos=ChaosConfig(seed=SEED, rules=(
                                FaultRule(op="crash", site="serve", dst=joiner,
                                          method="restore_block", count=1),
                            )))
        with ClusterRuntime(4, cfg) as rt:
            rt.upload("joincrash.txt", data)
            with pytest.raises(ClusterError, match="aborted"):
                rt.join_worker()
            m = rt.metrics

            assert m.counter("membership.joins_aborted").value == 1
            assert m.counter("membership.joins").value == 0
            assert m.counter("cluster.failovers").value == 0
            assert sorted(rt.worker_ids) == WORKERS
            res = rt.run(wordcount_job("joincrash.txt", app_id="wc-joincrash"))
            assert sum(res.output.values()) == 3000

    def test_joiner_missing_heartbeats_is_detected(self):
        """Regression: the heartbeat monitored set must follow live
        membership.  A joiner that goes silent after admission has to be
        detected by the liveness tracker and failed over exactly like a
        startup worker -- before the fix, only the startup roster was
        ever tracked."""
        data = corpus()
        with ClusterRuntime(3, CFG) as rt:
            rt.upload("hbjoin.txt", data)
            joined = rt.join_worker()
            # The joiner entered the monitored set at registration.
            assert joined in rt.coordinator.liveness.tracked()

            rt.kill_worker(joined)
            time.sleep(rt.coordinator.liveness.deadline
                       + 3 * rt.config.net.heartbeat_interval)
            # Silence crossed the miss threshold: detected...
            assert joined in rt.check_liveness()
            # ...and the next activation sweep fails it over.
            res = rt.run(wordcount_job("hbjoin.txt", app_id="wc-hbjoin"))
            assert joined not in rt.worker_ids
            assert rt.metrics.counter("cluster.failovers").value == 1
            assert sum(res.output.values()) == 3000


# -- multi-job failover ------------------------------------------------------------


class TestMultiJobFailover:
    def test_worker_killed_with_two_jobs_in_flight(self):
        """SIGKILL a worker while two submitted jobs are both mid-map:
        each job fails over independently (one budget spend apiece, one
        cluster failover total) and both finish bit-equal to the
        sequential runtime."""
        data = corpus()
        seq = EclipseMRRuntime(4, config=CFG)
        seq.upload("multi.txt", data)
        ref = seq.run(wordcount_job("multi.txt", app_id="mj-a")).output

        with ClusterRuntime(4, CFG) as rt:
            rt.upload("multi.txt", data)
            kills = []

            def chaos(_done_maps):
                # The third completed map overall: both jobs still have
                # most of their work outstanding.
                kills.append(1)
                if len(kills) == 3:
                    rt.kill_worker(rt.worker_ids[-1])

            rt.on_map_complete = chaos
            ha = rt.submit(wordcount_job("multi.txt", app_id="mj-a"))
            hb = rt.submit(wordcount_job("multi.txt", app_id="mj-b"))
            ra = ha.result(timeout=180)
            rb = hb.result(timeout=180)

            assert len(kills) >= 3, "chaos hook never reached the kill"
            assert ra.output == ref
            assert rb.output == ref
            assert rt.metrics.counter("cluster.failovers").value == 1
            assert len(rt.worker_ids) == 3
            # Every block of both jobs has exactly one surviving outcome.
            assert ra.stats.map_tasks == rb.stats.map_tasks > 0
            assert rt.metrics.counter("sched.jobs_completed").value == 2
