"""Bounded-memory data plane: streamed reduce output plus backpressure.

The fault-injection / property suite for the streaming transport.  What
it pins down, layer by layer:

* **Paging** -- ``framing.paginate`` and the reduce-output pager
  (``iter_output_pages`` / ``decode_output_pages``) round-trip exactly,
  across page/frame boundary sizes including empty payloads (Hypothesis
  property tests).
* **Stream RPC** -- a handler returning :class:`Stream` reaches the
  caller as a :class:`StreamResult` with header and pages intact; a
  generator that fails mid-stream, or produces an oversized page, is
  reported in-band with the connection still usable; a server that dies
  mid-stream discards the partial page buffer (``rpc.streams_aborted``)
  and fails the future with a transport error -- the caller never sees
  half a stream.
* **Backpressure** -- ``call_async`` admits at most ``net.max_in_flight``
  requests per connection; the ``rpc.in_flight`` gauge's peak proves the
  window holds, callers blocked on a full window are released by
  responses and raised by a closing connection, and ``NetConfig``
  rejects a windowless configuration outright.
* **Cluster** -- a wordcount whose reduce output exceeds
  ``net.max_frame_bytes`` streams across the wire and stays bit-equal to
  the sequential runtime with the LAF assignment sequence unchanged; a
  worker SIGKILLed *mid-stream* (via the ``on_stream_page`` chaos hook)
  fails over cleanly and the job still finishes bit-equal on survivors.
"""

import pickle
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterRuntime
from repro.cluster.messages import decode_output_pages, iter_output_pages
from repro.common.config import ClusterConfig, DFSConfig, NetConfig
from repro.common.errors import (
    ClusterError,
    ConfigError,
    FramingError,
    RpcConnectionError,
    RpcRemoteError,
)
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runtime import EclipseMRRuntime
from repro.net.framing import paginate
from repro.net.rpc import RpcClient, RpcServer, Stream, StreamResult
from repro.sim.metrics import MetricsRegistry


# ---------------------------------------------------------------------------
# Paging: byte-exact slicing and reduce-output round-trips
# ---------------------------------------------------------------------------


class TestPaginate:
    @given(
        payload=st.binary(min_size=0, max_size=4096),
        page_bytes=st.integers(min_value=1, max_value=1024),
    )
    @settings(max_examples=120, deadline=None)
    def test_round_trip_and_page_bounds(self, payload, page_bytes):
        pages = list(paginate(payload, page_bytes))
        assert b"".join(bytes(p) for p in pages) == payload
        # Every page is full except possibly the last; none exceed the limit.
        for page in pages[:-1]:
            assert len(page) == page_bytes
        if pages:
            assert 1 <= len(pages[-1]) <= page_bytes
        else:
            assert payload == b""

    @pytest.mark.parametrize("size", [0, 1, 63, 64, 65, 1000])
    def test_boundary_sizes_against_a_64_byte_page(self, size):
        payload = bytes(range(256)) * 4
        payload = (payload * (size // len(payload) + 1))[:size]
        pages = list(paginate(payload, 64))
        assert b"".join(bytes(p) for p in pages) == payload
        assert len(pages) == (size + 63) // 64

    def test_invalid_page_size_rejected(self):
        with pytest.raises(FramingError, match="page size"):
            list(paginate(b"abc", 0))


class TestOutputPaging:
    @given(
        output=st.dictionaries(
            st.text(min_size=0, max_size=20),
            st.one_of(st.integers(), st.text(max_size=50), st.binary(max_size=50)),
            max_size=40,
        ),
        page_bytes=st.integers(min_value=16, max_value=512),
    )
    @settings(max_examples=120, deadline=None)
    def test_round_trip_preserves_items_and_order(self, output, page_bytes):
        pages = list(iter_output_pages(output, page_bytes))
        rebuilt = decode_output_pages(pages)
        assert rebuilt == output
        assert list(rebuilt) == list(output)  # dict insertion order survives
        if not output:
            assert pages == []

    def test_pages_respect_the_byte_budget(self):
        output = {f"key-{i:04d}": "v" * 20 for i in range(200)}
        page_bytes = 256
        pages = list(iter_output_pages(output, page_bytes))
        assert len(pages) > 1
        item_sizes = {
            k: len(pickle.dumps((k, v), protocol=pickle.HIGHEST_PROTOCOL))
            for k, v in output.items()
        }
        for page in pages:
            items = pickle.loads(page)
            # The *item pickles* the pager budgeted with fit the page,
            # unless a single item alone is bigger than a page.
            if len(items) > 1:
                assert sum(item_sizes[k] for k, _ in items) <= page_bytes

    def test_single_item_bigger_than_a_page_gets_its_own_page(self):
        output = {"small": 1, "huge": "x" * 4096, "tail": 2}
        pages = list(iter_output_pages(output, 64))
        assert decode_output_pages(pages) == output
        solo = [pickle.loads(p) for p in pages if len(p) > 64]
        assert solo and all(len(items) == 1 for items in solo)

    def test_invalid_page_size_rejected(self):
        with pytest.raises(ClusterError, match="page size"):
            list(iter_output_pages({"a": 1}, 0))


# ---------------------------------------------------------------------------
# Stream RPC: reassembly, in-band failures, mid-stream transport death
# ---------------------------------------------------------------------------

NET = NetConfig(max_frame_bytes=64 * 1024)


@pytest.fixture()
def stream_server():
    release = threading.Event()
    started = threading.Event()

    def fixed_stream(n, page_size):
        def pages():
            for i in range(n):
                yield bytes([i % 256]) * page_size
        return Stream(pages(), value={"n": n, "page_size": page_size})

    def failing_stream(after):
        def pages():
            for i in range(after):
                yield b"ok" * 8
            raise RuntimeError("the pager exploded")
        return Stream(pages(), value=None)

    def oversized_page():
        def pages():
            yield b"fine" * 8
            yield b"z" * (NET.max_frame_bytes + 1)
        return Stream(pages(), value=None)

    def gated_stream():
        def pages():
            yield b"first-page"
            started.set()
            release.wait(10.0)
            yield b"never-delivered"
        return Stream(pages(), value={"gated": True})

    def echo(value):
        return value

    srv = RpcServer(
        {
            "fixed_stream": fixed_stream,
            "failing_stream": failing_stream,
            "oversized_page": oversized_page,
            "gated_stream": gated_stream,
            "echo": echo,
        },
        net=NET,
    ).start()
    srv.release = release
    srv.started = started
    yield srv
    release.set()
    srv.stop()


class TestStreamRpc:
    def test_streamed_response_reassembles_with_header(self, stream_server):
        metrics = MetricsRegistry()
        client = RpcClient(stream_server.host, stream_server.port, NET, metrics)
        try:
            result = client.call("fixed_stream", {"n": 10, "page_size": 1000})
            assert isinstance(result, StreamResult)
            assert result.value == {"n": 10, "page_size": 1000}
            assert len(result) == 10
            assert result.join() == b"".join(
                bytes([i % 256]) * 1000 for i in range(10)
            )
            assert metrics.counter("rpc.streams_completed").value == 1
            # Reassembly is complete: nothing left buffered.
            assert metrics.gauge("rpc.stream_pages").value == 0
            assert metrics.peak("rpc.stream_pages") >= 1
        finally:
            client.close()

    def test_stream_larger_than_the_frame_limit(self, stream_server):
        """The whole point: a response bigger than any legal frame."""
        client = RpcClient(stream_server.host, stream_server.port, NET)
        try:
            n, page = 40, 32 * 1024  # 1.25 MiB total, frames capped at 64 KiB
            assert n * page > NET.max_frame_bytes
            result = client.call("fixed_stream", {"n": n, "page_size": page},
                                 timeout=30.0)
            assert len(result) == n
            assert len(result.join()) == n * page
        finally:
            client.close()

    def test_empty_stream_resolves_to_zero_pages(self, stream_server):
        client = RpcClient(stream_server.host, stream_server.port, NET)
        try:
            result = client.call("fixed_stream", {"n": 0, "page_size": 1})
            assert isinstance(result, StreamResult)
            assert len(result) == 0 and result.join() == b""
        finally:
            client.close()

    def test_generator_failure_mid_stream_is_in_band(self, stream_server):
        """A pager that raises fails the call but keeps the connection."""
        metrics = MetricsRegistry()
        client = RpcClient(stream_server.host, stream_server.port, NET, metrics)
        try:
            with pytest.raises(RpcRemoteError, match="pager exploded"):
                client.call("failing_stream", {"after": 3})
            assert metrics.counter("rpc.streams_aborted").value == 1
            assert metrics.gauge("rpc.stream_pages").value == 0  # buffer dropped
            # The failure ended at a frame boundary: the connection lives.
            assert client.call("echo", {"value": "still-alive"}) == "still-alive"
        finally:
            client.close()

    def test_oversized_page_rejected_in_band(self, stream_server):
        client = RpcClient(stream_server.host, stream_server.port, NET)
        try:
            with pytest.raises(RpcRemoteError) as excinfo:
                client.call("oversized_page")
            assert excinfo.value.etype == "FramingError"
            assert client.call("echo", {"value": 42}) == 42
        finally:
            client.close()

    def test_server_death_mid_stream_discards_partial_pages(self, stream_server):
        """The kill lands between chunks: the partial buffer must go.

        The gated pager blocks after its first page, so exactly one chunk
        is on the client when the server dies -- fully deterministic,
        unlike SIGKILLing a process whose stream may already sit in
        kernel socket buffers.
        """
        metrics = MetricsRegistry()
        client = RpcClient(stream_server.host, stream_server.port, NET, metrics)
        first_page = threading.Event()
        client.stream_page_hook = lambda addr, pages: first_page.set()
        try:
            future = client.call_async("gated_stream")
            assert stream_server.started.wait(10.0), "stream never started"
            assert first_page.wait(10.0), "first chunk never arrived"
            stream_server.stop()  # transport death with the stream open
            with pytest.raises(RpcConnectionError):
                future.result(10.0)
            assert metrics.counter("rpc.streams_aborted").value == 1
            assert metrics.gauge("rpc.stream_pages").value == 0  # discarded
        finally:
            stream_server.release.set()
            client.close()


# ---------------------------------------------------------------------------
# Backpressure: the per-connection in-flight window
# ---------------------------------------------------------------------------


class TestBackpressure:
    def test_config_rejects_windowless_transport(self):
        with pytest.raises(ConfigError, match="max_in_flight"):
            NetConfig(max_in_flight=0)
        with pytest.raises(ConfigError, match="max_in_flight"):
            NetConfig(max_in_flight=-1)

    def test_peak_in_flight_never_exceeds_the_window(self):
        def slow_echo(value):
            time.sleep(0.05)
            return value

        net = NetConfig(max_in_flight=4)
        srv = RpcServer({"slow_echo": slow_echo}, net=net).start()
        metrics = MetricsRegistry()
        client = RpcClient(srv.host, srv.port, net, metrics)
        try:
            # 20 pipelined calls against a window of 4: call_async itself
            # blocks for slots, so issuing them serially exercises the wait.
            futures = [client.call_async("slow_echo", {"value": i})
                       for i in range(20)]
            assert [f.result(30.0) for f in futures] == list(range(20))
            assert metrics.peak("rpc.in_flight") <= net.max_in_flight
            assert metrics.peak("rpc.in_flight") == 4  # the window filled
            assert metrics.gauge("rpc.in_flight").value == 0  # all drained
        finally:
            client.close()
            srv.stop()

    def test_blocked_caller_released_by_a_response(self):
        gate = threading.Event()

        def wait_for_gate(tag):
            gate.wait(10.0)
            return tag

        net = NetConfig(max_in_flight=2)
        srv = RpcServer({"wait_for_gate": wait_for_gate}, net=net).start()
        client = RpcClient(srv.host, srv.port, net)
        third_result = []
        try:
            f1 = client.call_async("wait_for_gate", {"tag": 1})
            f2 = client.call_async("wait_for_gate", {"tag": 2})

            def third():
                third_result.append(client.call("wait_for_gate", {"tag": 3},
                                                timeout=30.0))

            t = threading.Thread(target=third, daemon=True)
            t.start()
            time.sleep(0.3)
            assert t.is_alive()          # the window is full: call 3 waits
            assert not third_result
            gate.set()                   # responses free slots
            t.join(30.0)
            assert third_result == [3]
            assert f1.result(10.0) == 1 and f2.result(10.0) == 2
        finally:
            gate.set()
            client.close()
            srv.stop()

    def test_blocked_caller_raises_when_the_connection_closes(self):
        gate = threading.Event()

        def wait_for_gate():
            gate.wait(10.0)
            return True

        net = NetConfig(max_in_flight=1)
        srv = RpcServer({"wait_for_gate": wait_for_gate}, net=net).start()
        client = RpcClient(srv.host, srv.port, net)
        outcome = []
        try:
            client.call_async("wait_for_gate")  # occupies the only slot

            def blocked():
                try:
                    client.call_async("wait_for_gate")
                    outcome.append("sent")
                except RpcConnectionError:
                    outcome.append("raised")

            t = threading.Thread(target=blocked, daemon=True)
            t.start()
            time.sleep(0.2)
            assert not outcome           # still parked on the window
            client.close()               # teardown must wake the waiter
            t.join(10.0)
            assert outcome == ["raised"]
        finally:
            gate.set()
            srv.stop()


# ---------------------------------------------------------------------------
# Cluster: streamed reduce output, bit-equal, and mid-stream failover
# ---------------------------------------------------------------------------

STREAM_CFG = ClusterConfig(
    dfs=DFSConfig(block_size=2048),
    # Shrunk so a modest wordcount output must stream: no single frame
    # may carry it, and each stream spans many pages.
    net=NetConfig(max_frame_bytes=16 * 1024, stream_page_bytes=1024),
)


def big_corpus() -> bytes:
    """A corpus whose wordcount output far exceeds ``max_frame_bytes``."""
    words = [f"streamword-{i:05d}-{'x' * 10}" for i in range(4000)]
    return " ".join(words[i % len(words)] for i in range(8000)).encode()


def big_wordcount(app_id: str) -> MapReduceJob:
    def wc_map(block):
        for token in bytes(block).decode().split():
            yield token, 1

    def wc_reduce(key, values):
        return sum(values)

    return MapReduceJob(app_id=app_id, input_file="big.txt",
                        map_fn=wc_map, reduce_fn=wc_reduce)


class TestClusterStreaming:
    def test_streamed_reduce_output_is_bit_equal(self):
        data = big_corpus()
        seq = EclipseMRRuntime(3, config=STREAM_CFG)
        seq.upload("big.txt", data)
        ref = seq.run(big_wordcount("stream-eq"))

        # The output could not have shipped inline: it exceeds any frame.
        out_bytes = len(pickle.dumps(ref.output,
                                     protocol=pickle.HIGHEST_PROTOCOL))
        assert out_bytes > STREAM_CFG.net.max_frame_bytes

        with ClusterRuntime(3, STREAM_CFG) as rt:
            rt.upload("big.txt", data)
            res = rt.run(big_wordcount("stream-eq"))

            assert res.output == ref.output  # bit-equal across the stream
            assert res.stats.tasks_per_server == ref.stats.tasks_per_server
            assert rt.metrics.counter("rpc.streams_completed").value >= 1
            assert rt.metrics.peak("rpc.stream_pages") >= 1
            streamed = sum(s.get("worker.reduces_streamed", 0)
                           for s in rt.worker_stats().values())
            assert streamed >= 1  # the workers really took the paged path

    def test_worker_killed_mid_stream_fails_over_bit_equal(self):
        data = big_corpus()
        seq = EclipseMRRuntime(3, config=STREAM_CFG)
        seq.upload("big.txt", data)
        ref = seq.run(big_wordcount("stream-ft"))

        with ClusterRuntime(3, STREAM_CFG) as rt:
            rt.upload("big.txt", data)
            killed = []
            addr_to_wid = {a.addr: w
                           for w, a in rt.coordinator.addresses.items()}

            def chaos(addr, pages):
                # SIGKILL the first worker seen streaming, two pages in.
                if pages == 2 and not killed:
                    wid = addr_to_wid[addr]
                    killed.append(wid)
                    rt.kill_worker(wid)

            rt.on_stream_page = chaos
            res = rt.run(big_wordcount("stream-ft"))

            assert killed, "chaos hook never fired mid-stream"
            assert res.output == ref.output  # correct despite the kill

            failovers = rt.metrics.counter("cluster.failovers").value
            if failovers:
                # The SIGKILL broke the stream mid-job: honest failover,
                # and the aborted attempt's work really re-executed.
                assert res.stats.task_retries >= 1
                assert killed[0] not in rt.worker_ids
            else:
                # The victim had already flushed every page into the
                # socket before the SIGKILL landed, so the job finished
                # first.  A *completed* job must never re-execute just
                # because end-of-job cleanup hit the corpse -- the
                # failure is swallowed and counted instead.
                assert res.stats.task_retries == 0
                assert rt.metrics.counter(
                    "cluster.cleanup_failures").value >= 1

            # Either way the cluster stays usable: the next job detects
            # the corpse (missed heartbeats or dead TCP), fails over, and
            # completes on the survivors with the same answer.
            res2 = rt.run(big_wordcount("stream-ft-2"))
            assert res2.output == ref.output
            assert rt.metrics.counter("cluster.failovers").value == 1
            assert killed[0] not in rt.worker_ids  # membership updated
