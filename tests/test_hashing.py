"""Unit and property tests for the circular hash key space."""

import pytest
from hypothesis import given, strategies as st

from repro.common.hashing import DEFAULT_SPACE, HashSpace, KeyRange


class TestHashSpace:
    def test_rejects_tiny_space(self):
        with pytest.raises(ValueError):
            HashSpace(1)

    def test_key_of_deterministic(self):
        sp = HashSpace(2**32)
        assert sp.key_of("input.txt") == sp.key_of("input.txt")

    def test_key_of_in_space(self):
        sp = HashSpace(140)  # the paper's Fig. 3 toy space
        for name in ("a", "b", "file", "x" * 100):
            assert 0 <= sp.key_of(name) < 140

    def test_different_names_usually_differ(self):
        sp = DEFAULT_SPACE
        keys = {sp.key_of(f"file-{i}") for i in range(1000)}
        assert len(keys) == 1000

    def test_block_key_differs_from_file_key(self):
        sp = DEFAULT_SPACE
        assert sp.block_key("f", 0) != sp.key_of("f")
        assert sp.block_key("f", 0) != sp.block_key("f", 1)

    def test_distance_wraps(self):
        sp = HashSpace(100)
        assert sp.distance(90, 10) == 20
        assert sp.distance(10, 90) == 80
        assert sp.distance(5, 5) == 0

    def test_add_wraps(self):
        sp = HashSpace(100)
        assert sp.add(95, 10) == 5
        assert sp.add(5, -10) == 95

    def test_in_range_plain(self):
        sp = HashSpace(100)
        assert sp.in_range(5, 0, 10)
        assert not sp.in_range(10, 0, 10)  # half-open
        assert sp.in_range(0, 0, 10)

    def test_in_range_wrapping(self):
        sp = HashSpace(100)
        assert sp.in_range(95, 90, 10)
        assert sp.in_range(5, 90, 10)
        assert not sp.in_range(50, 90, 10)

    def test_in_range_full_circle(self):
        sp = HashSpace(100)
        assert sp.in_range(42, 7, 7)

    def test_validate(self):
        sp = HashSpace(100)
        assert sp.validate(0) == 0
        assert sp.validate(99) == 99
        with pytest.raises(ValueError):
            sp.validate(100)
        with pytest.raises(ValueError):
            sp.validate(-1)

    def test_equality_by_size(self):
        assert HashSpace(64) == HashSpace(64)
        assert HashSpace(64) != HashSpace(128)
        assert hash(HashSpace(64)) == hash(HashSpace(64))


class TestKeyRange:
    def test_len_and_contains(self):
        sp = HashSpace(140)
        r = sp.range(35, 47)  # the paper's server-2 range in Fig. 3
        assert len(r) == 12
        assert 35 in r and 46 in r
        assert 47 not in r and 0 not in r

    def test_wrapping_range(self):
        sp = HashSpace(140)
        r = sp.range(102, 35)
        assert r.wraps()
        assert 110 in r and 0 in r and 34 in r
        assert 35 not in r and 90 not in r
        assert len(r) == 140 - 102 + 35

    def test_full_range(self):
        sp = HashSpace(140)
        r = sp.full_range(55)
        assert r.is_full
        assert len(r) == 140
        assert all(k in r for k in (0, 54, 55, 139))

    def test_split(self):
        sp = HashSpace(140)
        left, right = sp.range(0, 100).split(40)
        assert (left.start, left.end) == (0, 40)
        assert (right.start, right.end) == (40, 100)

    def test_split_rejects_boundary(self):
        sp = HashSpace(140)
        with pytest.raises(ValueError):
            sp.range(0, 100).split(0)
        with pytest.raises(ValueError):
            sp.range(0, 100).split(100)
        with pytest.raises(ValueError):
            sp.range(0, 100).split(120)

    def test_split_full_circle(self):
        sp = HashSpace(140)
        left, right = sp.full_range(10).split(70)
        assert len(left) + len(right) == 140

    def test_iter_keys_wrapping(self):
        sp = HashSpace(10)
        assert list(sp.range(8, 2).iter_keys()) == [8, 9, 0, 1]

    def test_rejects_out_of_space_bounds(self):
        sp = HashSpace(10)
        with pytest.raises(ValueError):
            KeyRange(sp, 0, 10)


# -- property tests ----------------------------------------------------------

spaces = st.integers(min_value=2, max_value=10_000).map(HashSpace)


@given(
    size=st.integers(min_value=2, max_value=10_000),
    data=st.data(),
)
def test_distance_is_metric_like(size, data):
    sp = HashSpace(size)
    a = data.draw(st.integers(0, size - 1))
    b = data.draw(st.integers(0, size - 1))
    # going a->b then b->a walks the whole circle (or nowhere if a == b)
    total = sp.distance(a, b) + sp.distance(b, a)
    assert total == (0 if a == b else size)


@given(size=st.integers(2, 5_000), data=st.data())
def test_every_key_in_exactly_one_partition(size, data):
    """Splitting the circle into arcs at sorted cut points covers each key once."""
    sp = HashSpace(size)
    n_cuts = data.draw(st.integers(1, min(8, size)))
    cuts = sorted(data.draw(st.lists(st.integers(0, size - 1), min_size=n_cuts, max_size=n_cuts, unique=True)))
    ranges = [sp.range(cuts[i], cuts[(i + 1) % len(cuts)]) for i in range(len(cuts))]
    key = data.draw(st.integers(0, size - 1))
    owners = [r for r in ranges if key in r]
    if len(cuts) == 1:
        assert ranges[0].is_full and len(owners) == 1
    else:
        assert len(owners) == 1


@given(size=st.integers(2, 5_000), data=st.data())
def test_range_length_sums_after_split(size, data):
    sp = HashSpace(size)
    start = data.draw(st.integers(0, size - 1))
    length = data.draw(st.integers(2, size))
    end = sp.add(start, length % size)
    r = sp.range(start, end)
    at = sp.add(start, data.draw(st.integers(1, len(r) - 1)))
    left, right = r.split(at)
    assert len(left) + len(right) == len(r)
    probe = data.draw(st.integers(0, size - 1))
    assert (probe in r) == ((probe in left) or (probe in right))
    assert not ((probe in left) and (probe in right))
