"""Tests for disk, page cache, network, node and cluster models."""

import pytest

from repro.common.config import ClusterConfig
from repro.common.units import GB, MB
from repro.sim.cluster import SimCluster
from repro.sim.engine import AllOf, Simulation
from repro.sim.network import Network
from repro.sim.disk import Disk
from repro.sim.pagecache import PageCache


class TestDisk:
    def test_sequential_read_time(self):
        sim = Simulation()
        disk = Disk(sim, bandwidth=100 * MB, seek_time=0.01)

        def body(sim, disk):
            yield from disk.read(100 * MB, stream="f")

        sim.run(sim.process(body(sim, disk)))
        # First access to a stream pays the seek.
        assert sim.now == pytest.approx(1.0 + 0.01)
        assert disk.bytes_read == 100 * MB

    def test_same_stream_skips_seek(self):
        sim = Simulation()
        disk = Disk(sim, bandwidth=100 * MB, seek_time=0.5)

        def body(sim, disk):
            yield from disk.read(100 * MB, stream="f")
            yield from disk.read(100 * MB, stream="f")

        sim.run(sim.process(body(sim, disk)))
        assert sim.now == pytest.approx(2.0 + 0.5)

    def test_interleaved_streams_reseek(self):
        sim = Simulation()
        disk = Disk(sim, bandwidth=100 * MB, seek_time=0.5)

        def body(sim, disk):
            yield from disk.read(100 * MB, stream="a")
            yield from disk.read(100 * MB, stream="b")
            yield from disk.read(100 * MB, stream="a")

        sim.run(sim.process(body(sim, disk)))
        assert sim.now == pytest.approx(3.0 + 3 * 0.5)

    def test_requests_serialize(self):
        sim = Simulation()
        disk = Disk(sim, bandwidth=100 * MB, seek_time=0.0)

        def reader(sim, disk):
            yield from disk.read(100 * MB)

        def body(sim, disk):
            yield AllOf([sim.process(reader(sim, disk)) for _ in range(3)])

        sim.run(sim.process(body(sim, disk)))
        assert sim.now == pytest.approx(3.0)

    def test_write_accounting(self):
        sim = Simulation()
        disk = Disk(sim, bandwidth=100 * MB, seek_time=0.0)

        def body(sim, disk):
            yield from disk.write(50 * MB)

        sim.run(sim.process(body(sim, disk)))
        assert disk.bytes_written == 50 * MB
        assert disk.busy_time == pytest.approx(0.5)


class TestPageCache:
    def test_miss_then_hit(self):
        pc = PageCache(10 * MB)
        assert not pc.access("a", 4 * MB)
        assert pc.access("a", 4 * MB)
        assert pc.hit_ratio == pytest.approx(0.5)

    def test_lru_eviction(self):
        pc = PageCache(10 * MB)
        pc.access("a", 4 * MB)
        pc.access("b", 4 * MB)
        pc.access("a", 4 * MB)  # refresh a
        pc.access("c", 4 * MB)  # evicts b (LRU)
        assert "a" in pc and "c" in pc and "b" not in pc

    def test_oversized_extent_bypasses(self):
        pc = PageCache(10 * MB)
        pc.access("small", 4 * MB)
        pc.insert("huge", 100 * MB)
        assert "huge" not in pc
        assert "small" in pc  # bypass must not evict the working set

    def test_insert_replaces_existing(self):
        pc = PageCache(10 * MB)
        pc.insert("a", 4 * MB)
        pc.insert("a", 6 * MB)
        assert pc.used == 6 * MB

    def test_invalidate_and_clear(self):
        pc = PageCache(10 * MB)
        pc.insert("a", 4 * MB)
        pc.invalidate("a")
        assert pc.used == 0
        pc.invalidate("a")  # no-op
        pc.insert("b", 4 * MB)
        pc.clear()
        assert len(pc) == 0 and pc.used == 0

    def test_zero_capacity_never_caches(self):
        pc = PageCache(0)
        assert not pc.access("a", 1)
        assert not pc.access("a", 1)


class TestNetwork:
    def _net(self, sim, nodes=4, rack=2, bw=100.0, uplink=100.0, latency=0.0):
        return Network(sim, num_nodes=nodes, rack_size=rack, node_bandwidth=bw, uplink_bandwidth=uplink, latency=latency)

    def test_single_flow_full_bandwidth(self):
        sim = Simulation()
        net = self._net(sim)

        def body(sim, net):
            yield net.transfer(0, 1, 1000)

        sim.run(sim.process(body(sim, net)))
        assert sim.now == pytest.approx(10.0)
        assert net.flows_completed == 1

    def test_local_transfer_is_latency_only(self):
        sim = Simulation()
        net = self._net(sim, latency=0.5)

        def body(sim, net):
            yield net.transfer(2, 2, 10**9)

        sim.run(sim.process(body(sim, net)))
        assert sim.now == pytest.approx(0.5)

    def test_two_flows_share_source_nic(self):
        sim = Simulation()
        net = self._net(sim)
        times = {}

        def one(sim, net, dst):
            yield net.transfer(0, dst, 1000)
            times[dst] = sim.now

        def body(sim, net):
            yield AllOf([sim.process(one(sim, net, 1)), sim.process(one(sim, net, 2))])

        sim.run(sim.process(body(sim, net)))
        # Both flows leave node 0 (same rack has nodes 0,1; node 2 is remote,
        # but the shared constraint is node0.up): 2 flows x 1000 B at 100 B/s
        # shared fairly -> both finish at 20 s.
        assert times[1] == pytest.approx(20.0)
        assert times[2] == pytest.approx(20.0)

    def test_disjoint_flows_run_at_full_rate(self):
        sim = Simulation()
        net = self._net(sim)
        times = {}

        def one(sim, net, src, dst):
            yield net.transfer(src, dst, 1000)
            times[(src, dst)] = sim.now

        def body(sim, net):
            yield AllOf([sim.process(one(sim, net, 0, 1)), sim.process(one(sim, net, 2, 3))])

        sim.run(sim.process(body(sim, net)))
        assert times[(0, 1)] == pytest.approx(10.0)
        assert times[(2, 3)] == pytest.approx(10.0)

    def test_cross_rack_uplink_bottleneck(self):
        sim = Simulation()
        # 4 nodes, 2 racks, fat NICs but a thin trunk.
        net = Network(sim, num_nodes=4, rack_size=2, node_bandwidth=1000.0, uplink_bandwidth=100.0, latency=0.0)
        times = {}

        def one(sim, net, src, dst):
            yield net.transfer(src, dst, 1000)
            times[(src, dst)] = sim.now

        def body(sim, net):
            yield AllOf([
                sim.process(one(sim, net, 0, 2)),
                sim.process(one(sim, net, 1, 3)),
            ])

        sim.run(sim.process(body(sim, net)))
        # Both flows cross the rack0->core trunk (100 B/s shared).
        assert times[(0, 2)] == pytest.approx(20.0)
        assert times[(1, 3)] == pytest.approx(20.0)

    def test_max_min_unequal_shares(self):
        sim = Simulation()
        # Flow A: 0->1 (bottlenecked at node1.down shared with flow B)
        # Flow B: 2->1, Flow C: 2->3 share node2.up.
        net = self._net(sim, nodes=4, rack=4, bw=100.0)
        done_at = {}

        def one(sim, net, tag, src, dst, size):
            yield net.transfer(src, dst, size)
            done_at[tag] = sim.now

        def body(sim, net):
            yield AllOf([
                sim.process(one(sim, net, "A", 0, 1, 500)),
                sim.process(one(sim, net, "B", 2, 1, 500)),
                sim.process(one(sim, net, "C", 2, 3, 500)),
            ])

        sim.run(sim.process(body(sim, net)))
        # Max-min: B constrained by both node2.up and node1.down -> 50.
        # A gets the rest of node1.down -> 50. C gets rest of node2.up -> 50.
        # All equal here; completion at 10 s each.
        for tag in "ABC":
            assert done_at[tag] == pytest.approx(10.0)

    def test_rates_rebalance_after_completion(self):
        sim = Simulation()
        net = self._net(sim, nodes=2, rack=2, bw=100.0)
        done_at = {}

        def one(sim, net, tag, size):
            yield net.transfer(0, 1, size)
            done_at[tag] = sim.now

        def body(sim, net):
            yield AllOf([
                sim.process(one(sim, net, "short", 500)),
                sim.process(one(sim, net, "long", 1500)),
            ])

        sim.run(sim.process(body(sim, net)))
        # Shared 100 B/s: each at 50 B/s. Short finishes at t=10 having moved
        # 500. Long then runs alone: 1000 bytes left at 100 B/s -> t=20.
        assert done_at["short"] == pytest.approx(10.0)
        assert done_at["long"] == pytest.approx(20.0)

    def test_zero_byte_transfer_completes(self):
        sim = Simulation()
        net = self._net(sim, latency=0.25)

        def body(sim, net):
            yield net.transfer(0, 1, 0)

        sim.run(sim.process(body(sim, net)))
        assert sim.now == pytest.approx(0.25)

    def test_invalid_node_rejected(self):
        sim = Simulation()
        net = self._net(sim)
        from repro.common.errors import SimulationError
        with pytest.raises(SimulationError):
            net.transfer(0, 99, 10)


class TestCluster:
    def test_construction_defaults(self):
        sim = Simulation()
        cluster = SimCluster(sim)
        assert len(cluster) == 40
        assert cluster.node(0).map_slots.capacity == 8

    def test_remote_read_local_vs_remote(self):
        sim = Simulation()
        cfg = ClusterConfig(num_nodes=2, rack_size=2, page_cache_per_node=1 * GB)
        cluster = SimCluster(sim, cfg)
        results = {}

        def body(sim, cluster):
            cached = yield from cluster.remote_read(0, 1, "blk", 128 * MB)
            results["first"] = (cached, sim.now)
            t0 = sim.now
            cached = yield from cluster.remote_read(0, 1, "blk", 128 * MB)
            results["second"] = (cached, sim.now - t0)

        sim.run(sim.process(body(sim, cluster)))
        first_cached, first_t = results["first"]
        second_cached, second_t = results["second"]
        assert not first_cached and second_cached
        # Second read skips the disk (page cache on the owner) so it is faster.
        assert second_t < first_t

    def test_drop_all_caches(self):
        sim = Simulation()
        cluster = SimCluster(sim, ClusterConfig(num_nodes=2, rack_size=2))
        cluster.node(0).page_cache.insert("x", 1024)
        cluster.drop_all_caches()
        assert "x" not in cluster.node(0).page_cache
