"""Tests for the DHT file system consistency checker."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import DFSConfig
from repro.common.hashing import HashSpace
from repro.dfs.blocks import BlockId
from repro.dfs.fault import rebalance, recover_from_failure
from repro.dfs.filesystem import DHTFileSystem
from repro.dfs.fsck import check


def make_fs(n=6, block_size=64, replication=2):
    return DHTFileSystem(
        [f"s{i}" for i in range(n)],
        DFSConfig(block_size=block_size, replication=replication),
        HashSpace(1 << 24),
    )


class TestCleanStates:
    def test_fresh_upload_is_clean(self):
        fs = make_fs()
        fs.upload("f", b"x" * 500)
        report = check(fs)
        assert report.clean, report.violations
        assert report.files_checked == 1
        assert report.blocks_checked == 8

    def test_empty_fs_is_clean(self):
        assert check(make_fs()).clean

    def test_after_recovery_is_clean(self):
        fs = make_fs()
        fs.upload("f", b"y" * 400)
        recover_from_failure(fs, list(fs.servers)[0])
        assert check(fs).clean

    def test_after_join_and_rebalance_is_clean(self):
        fs = make_fs()
        fs.upload("f", b"z" * 400)
        fs.add_server("late", position=424242)
        dirty = check(fs)
        assert not dirty.clean  # join moved ownership; data not yet moved
        rebalance(fs)
        assert check(fs).clean


class TestDetectsCorruption:
    def test_detects_missing_block(self):
        fs = make_fs()
        fs.upload("f", b"q" * 200)
        bid = BlockId("f", 0)
        for srv in fs.servers.values():
            srv.blocks.drop(bid)
        report = check(fs)
        assert report.by_kind("missing-block")

    def test_detects_missing_replica(self):
        fs = make_fs()
        fs.upload("f", b"q" * 200)
        desc = fs.stat("f").blocks[0]
        bid = BlockId("f", 0)
        replica_holder = fs.ring.replica_set(desc.key, extra=2)[1]
        fs.servers[replica_holder].blocks.drop(bid)
        report = check(fs)
        assert report.by_kind("missing-replica") or report.by_kind("under-replicated")

    def test_detects_misplaced_primary(self):
        fs = make_fs()
        fs.upload("f", b"q" * 60)  # single block
        desc = fs.stat("f").blocks[0]
        bid = BlockId("f", 0)
        owner = fs.ring.owner_of(desc.key)
        block = fs.servers[owner].blocks.get(bid)
        fs.servers[owner].blocks.drop(bid)
        stranger = next(s for s in fs.servers if s not in fs.ring.replica_set(desc.key, extra=2))
        fs.servers[stranger].blocks.put(block)
        report = check(fs)
        assert report.by_kind("misplaced-primary")

    def test_detects_orphan(self):
        from repro.dfs.blocks import Block

        fs = make_fs()
        fs.upload("f", b"q" * 60)
        fs.servers["s0"].blocks.put(Block(BlockId("ghost", 0), key=5, size=3, data=b"abc"))
        report = check(fs)
        assert report.by_kind("orphan-block")

    def test_detects_under_replicated_metadata(self):
        fs = make_fs()
        fs.upload("f", b"q" * 60)
        # Drop every replica copy of the metadata.
        for srv in fs.servers.values():
            srv.metadata_replicas.pop("f", None)
        report = check(fs)
        assert report.by_kind("under-replicated-metadata")


@given(
    n_servers=st.integers(3, 8),
    payload=st.binary(min_size=1, max_size=1500),
    kills=st.integers(0, 2),
    seed=st.integers(0, 99),
)
@settings(max_examples=30)
def test_repair_always_restores_clean_state(n_servers, payload, kills, seed):
    """Any upload / fail / recover / join / rebalance sequence ends clean."""
    import random

    rng = random.Random(seed)
    fs = make_fs(n=n_servers)
    fs.upload("f", payload)
    for _ in range(min(kills, n_servers - 3)):
        victim = rng.choice(list(fs.servers))
        recover_from_failure(fs, victim)
    fs.add_server("joiner", position=rng.randrange(1 << 24))
    rebalance(fs)
    report = check(fs)
    assert report.clean, report.violations
    assert fs.read("f") == payload
