"""Tests for virtual-node consistent hashing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import RingError
from repro.common.hashing import HashSpace
from repro.dht.ring import ConsistentHashRing
from repro.dht.vnodes import VirtualNodeRing


def vring(n=8, vnodes=16):
    ring = VirtualNodeRing(HashSpace(1 << 32), vnodes=vnodes)
    for i in range(n):
        ring.add_node(f"s{i}")
    return ring


class TestVirtualNodeRing:
    def test_membership(self):
        ring = vring(4)
        assert len(ring) == 4
        assert "s0" in ring and "s9" not in ring
        assert ring.nodes == [f"s{i}" for i in range(4)]

    def test_duplicate_rejected(self):
        ring = vring(2)
        with pytest.raises(RingError):
            ring.add_node("s0")

    def test_invalid_vnodes(self):
        with pytest.raises(RingError):
            VirtualNodeRing(vnodes=0)

    def test_owner_is_a_member(self):
        ring = vring(6)
        sp = ring.space
        for i in range(200):
            assert ring.owner_of(sp.key_of(f"k{i}")) in ring.nodes

    def test_remove_releases_all_positions(self):
        ring = vring(4, vnodes=8)
        ring.remove_node("s2")
        assert len(ring._ring) == 3 * 8
        sp = ring.space
        for i in range(200):
            assert ring.owner_of(sp.key_of(f"k{i}")) != "s2"

    def test_remove_unknown_rejected(self):
        with pytest.raises(RingError):
            vring(2).remove_node("ghost")

    def test_replica_set_distinct_physical(self):
        ring = vring(6, vnodes=32)
        sp = ring.space
        for i in range(100):
            rs = ring.replica_set(sp.key_of(f"k{i}"), extra=2)
            assert len(rs) == 3
            assert len(set(rs)) == 3

    def test_replica_set_small_cluster(self):
        ring = vring(2, vnodes=8)
        rs = ring.replica_set(123456, extra=2)
        assert set(rs) == {"s0", "s1"}

    def test_vnodes_even_out_ownership(self):
        """The whole point: many virtual positions concentrate each
        server's share around 1/n."""
        single = ConsistentHashRing(HashSpace(1 << 32))
        for i in range(8):
            single.add_node(f"s{i}")
        single_shares = [single.owned_fraction(n) for n in single.nodes]

        virtual = vring(8, vnodes=64)
        virtual_shares = [virtual.owned_fraction(n) for n in virtual.nodes]

        assert np.std(virtual_shares) < 0.5 * np.std(single_shares)
        assert sum(virtual_shares) == pytest.approx(1.0)
        assert sum(single_shares) == pytest.approx(1.0)

    def test_minimal_disruption_on_leave(self):
        ring = vring(6, vnodes=16)
        sp = ring.space
        keys = [sp.key_of(f"k{i}") for i in range(300)]
        before = {k: ring.owner_of(k) for k in keys}
        ring.remove_node("s3")
        moved = sum(1 for k in keys if before[k] != ring.owner_of(k))
        lost = sum(1 for k in keys if before[k] == "s3")
        assert moved == lost  # only the departed server's keys move


@given(
    n=st.integers(2, 8),
    vnodes=st.sampled_from([1, 4, 16]),
    key=st.integers(0, (1 << 32) - 1),
)
@settings(max_examples=60)
def test_vnode_ownership_total(n, vnodes, key):
    ring = VirtualNodeRing(HashSpace(1 << 32), vnodes=vnodes)
    for i in range(n):
        ring.add_node(f"s{i}")
    owner = ring.owner_of(key)
    assert owner in ring.nodes
    shares = [ring.owned_fraction(s) for s in ring.nodes]
    assert sum(shares) == pytest.approx(1.0)
