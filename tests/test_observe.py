"""Observability plane: exposition correctness, live scrapes, inertness.

Three layers of coverage:

* pure encoder tests (names, label escaping, counter/gauge/summary
  types) against hand-built registry exports;
* a standalone :class:`ObserveServer` over a fake worker poll (sampling
  rate limit, stale-on-error, routing, registry non-mutation);
* a real cluster with ``observe.enabled=true`` scraped *while a job
  runs*, plus the three-plane equality check proving the endpoint
  changes no job output, stats, or assignment sequence.
"""

from __future__ import annotations

import json
import re
import threading
import urllib.error
import urllib.request

import pytest

from repro.cluster import ClusterRuntime
from repro.common.config import ClusterConfig, DFSConfig, ObserveConfig
from repro.common.errors import ConfigError
from repro.common.serialization import config_from_dict, config_to_dict
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.parallel import ParallelEclipseMRRuntime
from repro.mapreduce.runtime import EclipseMRRuntime
from repro.observe import (
    ObserveServer,
    escape_label_value,
    render_exposition,
    sanitize_metric_name,
)
from repro.sim.metrics import MetricsRegistry

_TYPE_LINE = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary)$"
)
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[+-]Inf|-?[0-9][0-9eE+.-]*)$"
)


def assert_valid_exposition(text: str) -> None:
    """Every line is a legal 0.0.4 TYPE header or sample line."""
    assert text.endswith("\n"), "exposition must end with a newline"
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            assert _TYPE_LINE.match(line), f"bad TYPE line: {line!r}"
        else:
            assert _SAMPLE_LINE.match(line), f"bad sample line: {line!r}"


def _registry_export(counters=None, gauges=None, histograms=None) -> dict:
    return {
        "counters": counters or {},
        "gauges": {n: {"value": v, "max": v, "min": v}
                   for n, v in (gauges or {}).items()},
        "histograms": histograms or {},
    }


class TestPrometheusEncoding:
    def test_sanitize_names(self):
        assert sanitize_metric_name("rpc.in_flight") == "eclipsemr_rpc_in_flight"
        assert sanitize_metric_name("a-b c.d") == "eclipsemr_a_b_c_d"
        assert sanitize_metric_name("9lives") == "eclipsemr_9lives"

    def test_escape_label_values(self):
        assert escape_label_value('pa"th') == 'pa\\"th'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("two\nlines") == "two\\nlines"

    def test_counter_vs_gauge_types(self):
        text = render_exposition(
            _registry_export(counters={"rpc.calls": 7.0},
                             gauges={"rpc.in_flight": 3.0})
        )
        assert "# TYPE eclipsemr_rpc_calls_total counter\n" in text
        assert "eclipsemr_rpc_calls_total 7\n" in text
        assert "# TYPE eclipsemr_rpc_in_flight gauge\n" in text
        assert "eclipsemr_rpc_in_flight 3\n" in text
        assert_valid_exposition(text)

    def test_histogram_becomes_summary_with_exact_count_and_sum(self):
        summary = {"count": 4.0, "mean": 2.5, "p50": 2.0, "p90": 4.0,
                   "p99": 4.0, "max": 4.0}
        text = render_exposition(
            _registry_export(histograms={"rpc.latency_s": summary})
        )
        assert "# TYPE eclipsemr_rpc_latency_s summary\n" in text
        assert 'eclipsemr_rpc_latency_s{quantile="0.5"} 2\n' in text
        assert 'eclipsemr_rpc_latency_s{quantile="0.9"} 4\n' in text
        assert 'eclipsemr_rpc_latency_s{quantile="0.99"} 4\n' in text
        assert "eclipsemr_rpc_latency_s_count 4\n" in text
        assert "eclipsemr_rpc_latency_s_sum 10\n" in text  # count * mean
        assert "# TYPE eclipsemr_rpc_latency_s_max gauge\n" in text
        assert_valid_exposition(text)

    def test_worker_series_carry_worker_id_labels(self):
        workers = {
            "worker-0": {
                "blocks_stored": 2,
                "worker_id": "worker-0",  # non-numeric: must be skipped
                "registry": _registry_export(
                    counters={"worker.maps_run": 5.0}),
            },
        }
        text = render_exposition(_registry_export(), workers)
        assert ('eclipsemr_worker_maps_run_total{worker_id="worker-0"} 5\n'
                in text)
        assert 'eclipsemr_blocks_stored{worker_id="worker-0"} 2\n' in text
        assert "worker-0\"} worker-0" not in text
        assert_valid_exposition(text)

    def test_label_escaping_survives_hostile_worker_ids(self):
        hostile = 'w"eird\\id\nx'
        workers = {hostile: {"blocks_stored": 1, "registry": {}}}
        text = render_exposition(_registry_export(), workers)
        assert '{worker_id="w\\"eird\\\\id\\nx"}' in text
        assert_valid_exposition(text)

    def test_one_type_header_per_family(self):
        workers = {
            f"worker-{i}": {"registry": _registry_export(
                counters={"worker.maps_run": float(i)})}
            for i in range(3)
        }
        text = render_exposition(_registry_export(), workers)
        headers = [l for l in text.splitlines()
                   if l.startswith("# TYPE eclipsemr_worker_maps_run_total ")]
        assert len(headers) == 1
        samples = [l for l in text.splitlines()
                   if l.startswith("eclipsemr_worker_maps_run_total{")]
        assert len(samples) == 3

    def test_flat_duplicates_of_registry_counters_not_double_emitted(self):
        # get_stats(full=True) carries flat counter copies next to the
        # registry; only the registry (typed) series may be emitted.
        workers = {
            "worker-0": {
                "worker.maps_run": 5.0,  # flat duplicate
                "registry": _registry_export(
                    counters={"worker.maps_run": 5.0}),
            },
        }
        text = render_exposition(_registry_export(), workers)
        assert text.count("worker_maps_run") == 2  # one TYPE + one sample

    def test_special_float_values(self):
        text = render_exposition(
            _registry_export(gauges={"weird": float("inf")})
        )
        assert "eclipsemr_weird +Inf\n" in text
        assert_valid_exposition(text)


class TestObserveConfig:
    def test_disabled_by_default(self):
        cfg = ClusterConfig()
        assert cfg.observe.enabled is False

    def test_validation(self):
        with pytest.raises(ConfigError):
            ObserveConfig(port=-1)
        with pytest.raises(ConfigError):
            ObserveConfig(port=70000)
        with pytest.raises(ConfigError):
            ObserveConfig(sample_interval=0.0)

    def test_manifest_round_trip(self):
        cfg = ClusterConfig(
            observe=ObserveConfig(enabled=True, port=9900, sample_interval=0.5)
        )
        rebuilt = config_from_dict(config_to_dict(cfg))
        assert rebuilt.observe == cfg.observe

    def test_old_manifests_without_observe_still_load(self):
        manifest = config_to_dict(ClusterConfig())
        manifest.pop("observe")
        assert config_from_dict(manifest).observe == ObserveConfig()


def _get(url: str, timeout: float = 10.0) -> bytes:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.read()


class TestObserveServerStandalone:
    """The HTTP server over a fake worker poll -- no cluster processes."""

    def _server(self, poll, interval=60.0, registry=None):
        registry = registry or MetricsRegistry()
        cfg = ObserveConfig(enabled=True, port=0, sample_interval=interval)
        return ObserveServer(registry, poll, cfg).start()

    def test_sampling_is_rate_limited(self):
        calls = []

        def poll():
            calls.append(1)
            return {"worker-0": {"blocks_stored": 1, "registry": {}}}

        with self._server(poll, interval=60.0) as srv:
            for _ in range(4):
                assert_valid_exposition(_get(srv.url + "/metrics").decode())
        # One cold sample; every later scrape inside the interval reuses it.
        assert len(calls) == 1

    def test_failing_poll_serves_stale_sample(self):
        state = {"fail": False}

        def poll():
            if state["fail"]:
                raise RuntimeError("worker died mid-sample")
            return {"worker-0": {"blocks_stored": 7, "registry": {}}}

        with self._server(poll, interval=0.0001) as srv:
            first = json.loads(_get(srv.url + "/metrics.json"))
            assert first["workers"]["worker-0"]["blocks_stored"] == 7
            state["fail"] = True
            second = json.loads(_get(srv.url + "/metrics.json"))
            assert second["workers"]["worker-0"]["blocks_stored"] == 7
            assert second["sample_errors"] >= 1

    def test_scrape_does_not_mutate_the_registry(self):
        registry = MetricsRegistry()
        registry.counter("rpc.calls").inc(3)
        registry.gauge("rpc.in_flight").set(1)
        before_sets = (set(registry.counters), set(registry.gauges),
                       set(registry.histograms), set(registry.series))
        with self._server(lambda: {}, registry=registry) as srv:
            _get(srv.url + "/metrics")
            _get(srv.url + "/metrics.json")
            _get(srv.url + "/")
        assert (set(registry.counters), set(registry.gauges),
                set(registry.histograms), set(registry.series)) == before_sets

    def test_routes(self):
        with self._server(lambda: {}) as srv:
            html = _get(srv.url + "/").decode()
            assert "EclipseMR" in html and "/metrics.json" in html
            assert json.loads(_get(srv.url + "/metrics.json"))["workers"] == {}
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(srv.url + "/nope")
            assert err.value.code == 404

    def test_close_is_idempotent(self):
        srv = self._server(lambda: {})
        url = srv.url
        srv.close()
        srv.close()
        with pytest.raises(Exception):
            _get(url + "/metrics", timeout=0.5)


class TestObserveCluster:
    """A real 3-process cluster scraped while a wordcount job runs."""

    CFG = ClusterConfig(
        dfs=DFSConfig(block_size=2048),
        observe=ObserveConfig(enabled=True, port=0, sample_interval=0.05),
    )

    @staticmethod
    def corpus() -> bytes:
        words = [f"obsword-{i:03d}" for i in range(120)]
        return " ".join(words[i % len(words)] for i in range(8000)).encode()

    @staticmethod
    def job(app_id: str) -> MapReduceJob:
        def wc_map(block):
            for token in bytes(block).decode().split():
                yield token, 1

        def wc_reduce(key, values):
            return sum(values)

        return MapReduceJob(app_id=app_id, input_file="obs.txt",
                            map_fn=wc_map, reduce_fn=wc_reduce)

    def test_observe_enabled_changes_nothing_and_scrapes_never_fail(self):
        data = self.corpus()

        seq = EclipseMRRuntime(3, config=self.CFG)
        seq.upload("obs.txt", data)
        ref = seq.run(self.job("obs-seq"))

        par = ParallelEclipseMRRuntime(3, config=self.CFG, max_workers=4)
        par.upload("obs.txt", data)
        threaded = par.run(self.job("obs-par"))

        stop = threading.Event()
        errors: list[Exception] = []
        bodies: list[str] = []

        def hammer(url: str) -> None:
            while not stop.is_set():
                try:
                    bodies.append(_get(url + "/metrics").decode())
                except Exception as exc:  # a scrape must never fail mid-job
                    errors.append(exc)

        with ClusterRuntime(3, self.CFG) as rt:
            assert rt.observer is not None
            scraper = threading.Thread(target=hammer, args=(rt.observer.url,),
                                       daemon=True)
            rt.upload("obs.txt", data)
            scraper.start()
            try:
                clustered = rt.run(self.job("obs-cluster"))
                clustered2 = rt.run(self.job("obs-cluster-2"))
            finally:
                stop.set()
                scraper.join(timeout=10.0)
            # One final scrape after the jobs, when every worker has run
            # maps: the sampled per-worker series must be labeled.
            final = _get(rt.observer.url + "/metrics").decode()

        assert errors == []
        assert len(bodies) >= 1
        for body in bodies[:: max(1, len(bodies) // 20)]:
            assert_valid_exposition(body)
        assert_valid_exposition(final)
        for wid in ("worker-0", "worker-1", "worker-2"):
            assert f'worker_id="{wid}"' in final
        assert "eclipsemr_worker_maps_run_total{" in final
        assert "eclipsemr_heartbeat_age_s{" in final
        assert "eclipsemr_observe_scrapes_total" in final

        # Three-plane equality with the endpoint enabled and scraped
        # under load: outputs, stats, and the assignment sequence are
        # exactly the no-observe planes' results.
        assert threaded.output == ref.output
        assert clustered.output == ref.output
        assert clustered2.output == ref.output
        assert threaded.stats == ref.stats
        assert clustered.stats == ref.stats
        assert clustered.stats.tasks_per_server == ref.stats.tasks_per_server

    def test_metrics_json_and_dashboard_served(self):
        data = self.corpus()
        with ClusterRuntime(3, self.CFG) as rt:
            rt.upload("obs.txt", data)
            rt.run(self.job("obs-json"))
            payload = json.loads(_get(rt.observer.url + "/metrics.json"))
            html = _get(rt.observer.url + "/").decode()
        assert set(payload["workers"]) == {"worker-0", "worker-1", "worker-2"}
        w0 = payload["workers"]["worker-0"]
        assert "registry" in w0 and "counters" in w0["registry"]
        assert w0["heartbeat_age_s"] >= 0.0
        assert payload["coordinator"]["counters"]["rpc.calls"] > 0
        assert "EclipseMR" in html and "fetch(" in html

    def test_runtime_without_observe_starts_no_server(self):
        cfg = ClusterConfig(dfs=DFSConfig(block_size=2048))
        with ClusterRuntime(2, cfg) as rt:
            assert rt.observer is None
