"""Integration tests for the functional MapReduce engine."""

import pickle

import pytest

from repro.common.config import CacheConfig, ClusterConfig, DFSConfig, SchedulerConfig
from repro.common.hashing import HashSpace
from repro.mapreduce.api import EclipseMR
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runtime import EclipseMRRuntime, FailureInjector
from repro.mapreduce.shuffle import IntermediateStore, SpillBuffer

SMALL = ClusterConfig(
    num_nodes=6,
    rack_size=3,
    dfs=DFSConfig(block_size=256),
    cache=CacheConfig(capacity_per_server=64 * 1024),
    scheduler=SchedulerConfig(window_tasks=8, num_bins=64),
)


def pack_words(words_text: bytes) -> bytes:
    """Block-align a whitespace text so no word straddles a block boundary."""
    from repro.apps.workloads import pack_records

    return pack_records(words_text.split(), SMALL.dfs.block_size)


def word_map(block):
    for w in block.decode().split():
        yield w, 1


def count_reduce(word, counts):
    return sum(counts)


def make_cluster(scheduler="laf", **kwargs):
    return EclipseMR(workers=6, scheduler=scheduler, config=SMALL, **kwargs)


class TestSpillBuffer:
    def _buffer(self, threshold=10**9, deliveries=None):
        deliveries = deliveries if deliveries is not None else []
        space = HashSpace(1000)
        return SpillBuffer(
            space=space,
            route=lambda k: f"s{k % 3}",
            deliver=lambda dest, sid, pairs, nbytes: deliveries.append(
                (dest, sid, list(pairs), nbytes)
            ),
            threshold_bytes=threshold,
            task_id="t0",
        ), deliveries

    def test_flush_pushes_everything(self):
        buf, deliveries = self._buffer()
        buf.emit("a", 1)
        buf.emit("b", 2)
        assert not deliveries
        buf.flush()
        total = sum(len(p) for _, _, p, _ in deliveries)
        assert total == 2

    def test_threshold_triggers_spill(self):
        buf, deliveries = self._buffer(threshold=1)
        buf.emit("a", 1)
        assert len(deliveries) == 1  # spilled immediately
        assert buf.buffered_bytes == 0

    def test_spill_ids_deterministic(self):
        buf1, d1 = self._buffer(threshold=1)
        buf2, d2 = self._buffer(threshold=1)
        for b in (buf1, buf2):
            b.emit("a", 1)
            b.emit("a", 2)
        assert [sid for _, sid, _, _ in d1] == [sid for _, sid, _, _ in d2]

    def test_manifest_lists_all_spills(self):
        buf, _ = self._buffer(threshold=1)
        buf.emit("a", 1)
        buf.emit("b", 2)
        buf.flush()
        assert len(buf.manifest()) == buf.spills

    def test_skipped_spills_count_toward_nothing(self):
        """A deliverer returning False (combiner emptied the spill) leaves
        no trace: not in ``spills``, ``bytes_pushed``, or the manifest."""
        space = HashSpace(1000)
        delivered = []

        def deliver(dest, sid, pairs, nbytes):
            if pairs[0][0] == "skipme":
                return False
            delivered.append(sid)

        buf = SpillBuffer(space, route=lambda k: k % 3, deliver=deliver,
                          threshold_bytes=1, task_id="t0")
        buf.emit("skipme", 1)
        buf.emit("keep", 2)
        buf.flush()
        assert buf.spills_skipped == 1
        assert buf.spills == len(delivered) == 1
        assert buf.bytes_pushed > 0
        assert [sid for _, sid, _ in buf.manifest()] == delivered

    def test_manifest_records_delivery_nbytes(self):
        buf, deliveries = self._buffer(threshold=1)
        buf.emit("a", 1)
        buf.flush()
        [(_, sid, _, nbytes)] = deliveries
        assert buf.manifest() == [(f"s{buf.key_of('a') % 3}", sid, nbytes)]

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            self._buffer(threshold=0)

    def test_pair_size_positive(self):
        assert SpillBuffer.pair_size("key", [1, 2, 3]) > 0


class TestIntermediateStore:
    def test_receive_and_collect(self):
        store = IntermediateStore("s0")
        store.receive("job", "sp0", [("a", 1)], 10)
        store.receive("job", "sp1", [("b", 2)], 10)
        assert sorted(store.pairs_for("job")) == [("a", 1), ("b", 2)]
        assert store.bytes_received == 20

    def test_redelivery_overwrites(self):
        """A retried map task re-pushes the same spill id: no duplicates."""
        store = IntermediateStore("s0")
        store.receive("job", "sp0", [("a", 1)], 10)
        store.receive("job", "sp0", [("a", 1)], 10)
        assert store.pairs_for("job") == [("a", 1)]

    def test_discard_job(self):
        store = IntermediateStore("s0")
        store.receive("job", "sp0", [("a", 1)], 10)
        store.discard_job("job")
        assert store.pairs_for("job") == []


class TestWordCountEndToEnd:
    def test_counts_are_exact(self):
        mr = make_cluster()
        text = b"the quick brown fox jumps over the lazy dog the end"
        mr.upload("t.txt", text)
        result = mr.map_reduce("wc", "t.txt", word_map, count_reduce)
        assert result.output["the"] == 3
        assert result.output["fox"] == 1
        assert sum(result.output.values()) == len(text.split())

    def test_multi_block_input(self):
        mr = make_cluster()
        words = [f"w{i % 50}" for i in range(2000)]
        data = pack_words(" ".join(words).encode())
        mr.upload("big.txt", data)
        result = mr.map_reduce("wc", "big.txt", word_map, count_reduce)
        assert result.stats.map_tasks > 1
        assert sum(result.output.values()) == 2000
        assert result.output["w0"] == 40

    def test_results_identical_across_schedulers(self):
        text = pack_words(" ".join(f"tok{i % 30}" for i in range(500)).encode())
        outputs = []
        for sched in ("laf", "delay"):
            mr = make_cluster(sched)
            mr.upload("in.txt", text)
            outputs.append(mr.map_reduce("wc", "in.txt", word_map, count_reduce).output)
        assert outputs[0] == outputs[1]

    def test_stats_track_tasks_and_reads(self):
        mr = make_cluster()
        mr.upload("t.txt", pack_words(b"x " * 600))
        result = mr.map_reduce("wc", "t.txt", word_map, count_reduce)
        stats = result.stats
        assert stats.map_tasks == len(mr.runtime.dfs.stat("t.txt").blocks)
        assert stats.reduce_tasks >= 1
        assert stats.local_block_reads + stats.remote_block_reads == stats.map_tasks
        assert sum(stats.tasks_per_server.values()) == stats.map_tasks + stats.reduce_tasks

    def test_combiner_reduces_shuffle_volume(self):
        text = pack_words(("word " * 3000).encode())
        mr1 = make_cluster()
        mr1.upload("t.txt", text)
        no_comb = mr1.map_reduce("wc1", "t.txt", word_map, count_reduce)

        mr2 = make_cluster()
        mr2.upload("t.txt", text)
        job = MapReduceJob(
            app_id="wc2", input_file="t.txt", map_fn=word_map,
            reduce_fn=count_reduce,
            combiner=lambda w, cs: [sum(cs)],
            spill_buffer_bytes=512,
        )
        with_comb = mr2.run(job)
        assert with_comb.output == no_comb.output


class TestCacheBehaviour:
    def test_second_job_hits_icache(self):
        mr = make_cluster()
        mr.upload("t.txt", pack_words(b"alpha beta " * 300))
        first = mr.map_reduce("j1", "t.txt", word_map, count_reduce)
        second = mr.map_reduce("j2", "t.txt", word_map, count_reduce)
        assert first.stats.icache_hits == 0
        assert second.stats.icache_hits == second.stats.map_tasks
        assert second.stats.icache_misses == 0

    def test_laf_keeps_block_on_same_server(self):
        """Consistent hashing means the same block's tasks land where the
        block is already cached."""
        mr = make_cluster("laf")
        mr.upload("t.txt", b"only one block here")
        mr.map_reduce("j1", "t.txt", word_map, count_reduce)
        r2 = mr.map_reduce("j2", "t.txt", word_map, count_reduce)
        assert r2.stats.icache_hits == 1

    def test_clear_caches(self):
        mr = make_cluster()
        mr.upload("t.txt", pack_words(b"data " * 100))
        mr.map_reduce("j1", "t.txt", word_map, count_reduce)
        mr.clear_caches()
        r2 = mr.map_reduce("j2", "t.txt", word_map, count_reduce)
        assert r2.stats.icache_hits == 0


class TestIntermediateReuse:
    def _job(self, app_id, reuse):
        return MapReduceJob(
            app_id=app_id,
            input_file="t.txt",
            map_fn=word_map,
            reduce_fn=count_reduce,
            cache_intermediates=True,
            reuse_intermediates=reuse,
        )

    def test_rerun_skips_maps(self):
        mr = make_cluster()
        mr.upload("t.txt", pack_words(b"gamma delta " * 200))
        first = mr.run(self._job("app", reuse=False))
        second = mr.run(self._job("app", reuse=True))
        assert second.output == first.output
        assert second.stats.maps_skipped_by_reuse == first.stats.map_tasks
        assert second.stats.map_tasks == 0

    def test_reuse_survives_cache_eviction_via_dfs(self):
        """Evicted oCache entries are re-read from the DHT file system
        (the persistent copy the paper keeps for fault tolerance)."""
        mr = make_cluster()
        mr.upload("t.txt", pack_words(b"epsilon zeta " * 200))
        first = mr.run(self._job("app", reuse=False))
        mr.clear_caches()
        second = mr.run(self._job("app", reuse=True))
        assert second.output == first.output
        assert second.stats.map_tasks == 0
        assert second.stats.ocache_hits == 0  # everything came from the DFS

    def test_no_reuse_without_marker(self):
        mr = make_cluster()
        mr.upload("t.txt", pack_words(b"eta theta " * 50))
        result = mr.run(self._job("fresh", reuse=True))
        assert result.stats.maps_skipped_by_reuse == 0
        assert result.stats.map_tasks > 0

    def test_replay_reports_original_shuffle_stats(self):
        """The replayed run's spill/byte accounting equals the original
        run's (regression: replayed jobs reported spills=0 and
        bytes_shuffled=0 because nothing re-counted the spills)."""
        mr = make_cluster()
        mr.upload("t.txt", pack_words(b"iota omega " * 200))

        def received():
            return sum(w.intermediates.bytes_received
                       for w in mr.runtime.workers.values())

        first = mr.run(self._job("app", reuse=False))
        after_first = received()
        second = mr.run(self._job("app", reuse=True))

        assert second.stats.map_tasks == 0
        assert second.stats.spills == first.stats.spills > 0
        assert second.stats.bytes_shuffled == first.stats.bytes_shuffled > 0
        # The reduce-side stores were credited exactly the original sizes.
        assert received() - after_first == first.stats.bytes_shuffled


class TestEmptyCombinerSpills:
    """Spills a combiner empties out are skipped on delivery: nothing is
    shipped, cached, or persisted (regression: they were delivered and
    written to the DFS as a keyless object at hash key 0)."""

    def _job(self, app_id, combiner, reuse=False):
        return MapReduceJob(
            app_id=app_id, input_file="t.txt", map_fn=word_map,
            reduce_fn=count_reduce, combiner=combiner,
            cache_intermediates=True, reuse_intermediates=reuse,
        )

    def test_all_dropped_spills_leave_no_trace(self):
        mr = make_cluster()
        mr.upload("t.txt", pack_words(b"zap " * 200))
        drop_all = lambda key, values: []
        res = mr.run(self._job("drop", drop_all))
        assert res.output == {}
        assert res.stats.map_tasks > 1
        assert res.stats.spills == 0
        assert res.stats.bytes_shuffled == 0
        # No spill object was persisted (markers live under _imr-done/).
        assert not any(n.startswith("_imr/")
                       for n in mr.runtime.dfs.list_files())

        # The (empty) markers still replay: the rerun skips every map.
        second = mr.run(self._job("drop", drop_all, reuse=True))
        assert second.output == {}
        assert second.stats.maps_skipped_by_reuse == res.stats.map_tasks
        assert second.stats.map_tasks == 0

    def test_partially_dropped_spills_keep_surviving_pairs(self):
        mr = make_cluster()
        mr.upload("t.txt", pack_words(b"keep drop " * 150))
        combiner = lambda k, vs: [] if k == "drop" else [sum(vs)]
        res = mr.run(self._job("part", combiner))
        assert res.output == {"keep": 150}
        second = mr.run(self._job("part", combiner, reuse=True))
        assert second.output == {"keep": 150}
        assert second.stats.maps_skipped_by_reuse == res.stats.map_tasks
        assert second.stats.spills == res.stats.spills
        assert second.stats.bytes_shuffled == res.stats.bytes_shuffled


class TestFaultTolerance:
    def test_injected_failure_retries_and_result_correct(self):
        injector = FailureInjector({("wc", 0): 1})
        mr = make_cluster(failure_injector=injector)
        text = b"iota kappa " * 300
        mr.upload("t.txt", pack_words(text))
        result = mr.map_reduce("wc", "t.txt", word_map, count_reduce)
        assert injector.injected == 1
        assert result.stats.task_retries == 1
        assert sum(result.output.values()) == len(text.split())

    def test_repeated_failures_eventually_succeed(self):
        injector = FailureInjector({("wc", 0): 3})
        mr = make_cluster(failure_injector=injector)
        mr.upload("t.txt", pack_words(b"lambda " * 100))
        result = mr.map_reduce("wc", "t.txt", word_map, count_reduce)
        assert result.stats.task_retries == 3
        assert result.output["lambda"] == 100

    def test_too_many_failures_raise(self):
        from repro.common.errors import SchedulingError

        injector = FailureInjector({("wc", 0): 99})
        mr = make_cluster(failure_injector=injector)
        mr.upload("t.txt", pack_words(b"mu " * 10))
        with pytest.raises(SchedulingError, match="failed"):
            mr.map_reduce("wc", "t.txt", word_map, count_reduce)

    def test_no_duplicate_pairs_after_retry(self):
        """The retried mapper re-pushes the same spill ids; counts stay exact."""
        injector = FailureInjector({("wc", 0): 2})
        mr = make_cluster(failure_injector=injector)
        words = pack_words(" ".join(f"t{i % 7}" for i in range(100)).encode())
        mr.upload("t.txt", words)
        result = mr.map_reduce("wc", "t.txt", word_map, count_reduce)
        assert sum(result.output.values()) == 100


class TestReduceLocality:
    def test_reduce_runs_where_intermediates_live(self):
        """Reduce keys are grouped by the DFS-ring owner of their hash key:
        every key reduces on exactly one server (engine asserts this)."""
        mr = make_cluster()
        mr.upload("t.txt", pack_words(" ".join(f"u{i}" for i in range(400)).encode()))
        result = mr.map_reduce("wc", "t.txt", word_map, count_reduce)
        # More than one reducer participated for 400 distinct keys.
        assert result.stats.reduce_tasks > 1

    def test_shuffle_routes_by_hash(self):
        mr = make_cluster()
        runtime = mr.runtime
        text = pack_words(" ".join(f"v{i}" for i in range(100)).encode())
        mr.upload("t.txt", text)
        job = MapReduceJob("wc", "t.txt", word_map, count_reduce)
        # Intercept: after the run, each key's reducer must equal the ring owner.
        result = runtime.run(job)
        for word in result.output:
            owner = runtime.dfs.ring.owner_of(runtime.space.key_of(repr(word)))
            assert owner in runtime.worker_ids


class TestRuntimeConstruction:
    def test_int_worker_count(self):
        rt = EclipseMRRuntime(4, config=SMALL)
        assert len(rt.worker_ids) == 4

    def test_unknown_scheduler_rejected(self):
        from repro.common.errors import SchedulingError

        with pytest.raises(SchedulingError):
            EclipseMRRuntime(4, config=SMALL, scheduler="bogus")

    def test_empty_workers_rejected(self):
        from repro.common.errors import SchedulingError

        with pytest.raises(SchedulingError):
            EclipseMRRuntime([], config=SMALL)

    def test_custom_scheduler_instance(self):
        from repro.scheduler.fair import FairScheduler

        # A locality scheduler is not hash-driven; the runtime requires
        # assign(hash_key=...) support, which FairScheduler tolerates.
        sched = FairScheduler([f"worker-{i}" for i in range(4)])
        rt = EclipseMRRuntime(4, config=SMALL, scheduler=sched)
        assert rt.scheduler is sched
