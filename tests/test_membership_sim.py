"""Membership + heartbeats driven by the discrete-event clock.

The paper's §II-A: "Each server exchanges heartbeat messages with direct
neighbors to detect server failures, and the resource manager and job
scheduler are notified when a server failure is detected."  These tests
run the membership service against simulated heartbeat processes and
measure detection latency and the election/takeover chain.
"""

import pytest

from repro.common.hashing import HashSpace
from repro.dht.membership import MembershipService
from repro.dht.ring import ConsistentHashRing
from repro.sim.engine import Simulation


def build(num_nodes=6, timeout=3.0):
    sim = Simulation()
    ring = ConsistentHashRing(HashSpace(1 << 20))
    svc = MembershipService(ring, heartbeat_timeout=timeout)
    for i in range(num_nodes):
        svc.join(f"n{i}", now=0.0)
    return sim, svc


def heartbeater(sim, svc, node, period, die_at=None):
    """A node's heartbeat loop; optionally goes silent at ``die_at``."""
    while True:
        yield sim.timeout(period)
        if die_at is not None and sim.now >= die_at:
            return
        if svc.is_alive(node):
            svc.heartbeat(node, sim.now)


def detector(sim, svc, period, log):
    """The neighbor-watch loop: checks for silent nodes every ``period``."""
    while True:
        yield sim.timeout(period)
        for failed in svc.detect_failures(sim.now):
            log.append((sim.now, failed))


class TestHeartbeatDetection:
    def test_silent_node_detected_within_timeout_plus_period(self):
        sim, svc = build(timeout=3.0)
        log = []
        for i in range(6):
            sim.process(heartbeater(sim, svc, f"n{i}", 1.0, die_at=10.0 if i == 2 else None))
        sim.process(detector(sim, svc, 0.5, log))
        sim.run(until=30.0)
        assert len(log) == 1
        detected_at, node = log[0]
        assert node == "n2"
        # Last beat ~10 s; detection by ~10 + timeout + one detector period.
        assert 12.5 <= detected_at <= 14.0

    def test_healthy_cluster_never_fires(self):
        sim, svc = build(timeout=3.0)
        log = []
        for i in range(6):
            sim.process(heartbeater(sim, svc, f"n{i}", 1.0))
        sim.process(detector(sim, svc, 0.5, log))
        sim.run(until=60.0)
        assert log == []
        assert len(svc.alive_nodes) == 6

    def test_detection_triggers_reelection_when_coordinator_dies(self):
        sim, svc = build(timeout=2.0)
        coordinator = svc.elect_coordinator(now=0.0)
        log = []
        for node in list(svc.alive_nodes):
            die = 5.0 if node == coordinator else None
            sim.process(heartbeater(sim, svc, node, 1.0, die_at=die))

        elected = []

        def watchdog(sim, svc):
            while True:
                yield sim.timeout(0.5)
                for failed in svc.detect_failures(sim.now):
                    log.append(failed)
                    elected.append(svc.elect_coordinator(now=sim.now))

        sim.process(watchdog(sim, svc))
        sim.run(until=20.0)
        assert log == [coordinator]
        assert len(elected) == 1
        assert elected[0] != coordinator
        assert svc.is_alive(elected[0])

    def test_multiple_staggered_failures(self):
        sim, svc = build(num_nodes=8, timeout=2.0)
        log = []
        death = {"n1": 5.0, "n4": 12.0, "n6": 19.0}
        for i in range(8):
            node = f"n{i}"
            sim.process(heartbeater(sim, svc, node, 1.0, die_at=death.get(node)))
        sim.process(detector(sim, svc, 0.5, log))
        sim.run(until=40.0)
        assert [n for _, n in log] == ["n1", "n4", "n6"]
        # Detections happen in cause order and within bounds.
        for (t, node) in log:
            # The last heartbeat lands up to one period before death, so
            # detection falls in [death - period + timeout, death + timeout
            # + detector period].
            assert t >= death[node] - 1.0 + 2.0
            assert t <= death[node] + 2.0 + 1.0
        assert len(svc.alive_nodes) == 5

    def test_takeover_ownership_moves_to_neighbor(self):
        """After detection, the dead node's arc belongs to its old successor."""
        sim, svc = build(timeout=2.0)
        ring = svc.ring
        victim = svc.alive_nodes[2]
        successor = ring.successor(victim)
        victim_range = ring.range_of(victim)
        for node in list(svc.alive_nodes):
            sim.process(heartbeater(sim, svc, node, 1.0, die_at=4.0 if node == victim else None))
        log = []
        sim.process(detector(sim, svc, 0.5, log))
        sim.run(until=15.0)
        probe = victim_range.start  # a key the victim used to own
        assert ring.owner_of(probe) == successor
