"""Tests for finger tables, Chord routing, and membership."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import RingError
from repro.common.hashing import HashSpace
from repro.dht.finger import RoutingTable
from repro.dht.membership import MembershipService, NodeState
from repro.dht.ring import ConsistentHashRing


def build_ring(positions, size=1 << 16):
    sp = HashSpace(size)
    ring = ConsistentHashRing(sp)
    for i, pos in enumerate(positions):
        ring.add_node(f"n{i}", pos)
    return ring


class TestOneHopRouting:
    def test_zero_or_one_hop(self):
        ring = build_ring([100, 5000, 20000, 44000])
        rt = RoutingTable(ring, one_hop=True)
        route = rt.route("n0", 99)
        assert route.owner == "n0" and route.hop_count == 0
        route = rt.route("n0", 30000)
        assert route.owner == "n3" and route.hop_count == 1
        assert route.hops == ("n0", "n3")

    def test_empty_ring_rejected(self):
        with pytest.raises(RingError):
            RoutingTable(ConsistentHashRing(HashSpace(100)))


class TestChordRouting:
    def test_log_n_routing_reaches_owner(self):
        ring = build_ring([(i * 37 + 11) % (1 << 16) for i in range(32)])
        rt = RoutingTable(ring, one_hop=False)
        for key in range(0, 1 << 16, 997):
            route = rt.route("n0", key)
            assert route.owner == ring.owner_of(key)
            assert route.hops[0] == "n0"
            assert route.hops[-1] == route.owner

    def test_hop_counts_are_logarithmic(self):
        size = 1 << 20
        sp = HashSpace(size)
        ring = ConsistentHashRing(sp)
        for i in range(64):
            ring.add_node(f"n{i}")
        rt = RoutingTable(ring, one_hop=False)
        keys = [sp.key_of(f"probe{i}") for i in range(50)]
        avg = rt.average_hops(keys, starts=ring.nodes[:8])
        # For 64 nodes, Chord averages ~ (log2 64)/2 = 3 hops.
        assert 0.5 < avg < 7.0

    def test_one_hop_avg_less_than_chord(self):
        ring = build_ring([(i * 997 + 5) % (1 << 16) for i in range(40)])
        keys = list(range(0, 1 << 16, 2048))
        chord = RoutingTable(ring, one_hop=False).average_hops(keys)
        onehop = RoutingTable(ring, one_hop=True).average_hops(keys)
        assert onehop <= 1.0
        assert onehop < chord

    def test_single_node_routes_to_itself(self):
        ring = build_ring([77])
        rt = RoutingTable(ring, one_hop=False)
        assert rt.route("n0", 12345 % (1 << 16)).hop_count == 0

    def test_rebuild_after_membership_change(self):
        ring = build_ring([100, 5000, 20000])
        rt = RoutingTable(ring, one_hop=False)
        ring.add_node("late", 60000)
        rt.rebuild()
        # "late" at position 60000 owns [20000, 60000).
        route = rt.route("n0", 59999)
        assert route.owner == "late"


@given(
    st.lists(st.integers(0, (1 << 14) - 1), min_size=2, max_size=24, unique=True),
    st.integers(0, (1 << 14) - 1),
)
@settings(max_examples=80)
def test_chord_routing_always_terminates_at_owner(positions, key):
    ring = build_ring(positions, size=1 << 14)
    rt = RoutingTable(ring, one_hop=False)
    start = ring.nodes[0]
    route = rt.route(start, key)
    assert route.owner == ring.owner_of(key)
    assert route.hop_count <= 2 * len(ring) + 1
    # No node is visited twice (greedy progress never cycles).
    assert len(set(route.hops)) == len(route.hops)


class TestMembership:
    def _svc(self):
        ring = ConsistentHashRing(HashSpace(1 << 16))
        return MembershipService(ring, heartbeat_timeout=3.0)

    def test_join_and_state(self):
        svc = self._svc()
        svc.join("a", now=0.0, position=10)
        assert svc.state_of("a") is NodeState.ALIVE
        assert svc.alive_nodes == ["a"]

    def test_failure_removes_from_ring(self):
        svc = self._svc()
        svc.join("a", position=10)
        svc.join("b", position=200)
        svc.fail("a", now=5.0)
        assert svc.ring.nodes == ["b"]
        assert svc.state_of("a") is NodeState.DEAD
        assert not svc.is_alive("a")

    def test_heartbeat_timeout_detection(self):
        svc = self._svc()
        svc.join("a", now=0.0, position=10)
        svc.join("b", now=0.0, position=200)
        svc.heartbeat("a", now=2.0)
        svc.heartbeat("b", now=2.0)
        svc.heartbeat("a", now=4.0)
        # b last beat at 2.0; at t=6 it exceeds the 3 s timeout.
        failed = svc.detect_failures(now=6.0)
        assert failed == ["b"]
        assert svc.alive_nodes == ["a"]

    def test_detect_failures_is_idempotent(self):
        svc = self._svc()
        svc.join("a", now=0.0, position=10)
        svc.detect_failures(now=100.0)
        assert svc.detect_failures(now=200.0) == []

    def test_election_lowest_position_wins(self):
        svc = self._svc()
        svc.join("high", position=50000)
        svc.join("low", position=3)
        svc.join("mid", position=900)
        assert svc.elect_coordinator() == "low"
        svc.fail("low")
        assert svc.elect_coordinator() == "mid"

    def test_election_empty_cluster_rejected(self):
        svc = self._svc()
        with pytest.raises(RingError):
            svc.elect_coordinator()

    def test_events_and_listeners(self):
        svc = self._svc()
        seen = []
        svc.subscribe(lambda ev: seen.append((ev.kind, ev.node_id)))
        svc.join("a", position=1)
        svc.join("b", position=2)
        svc.fail("a")
        svc.elect_coordinator()
        assert seen == [("join", "a"), ("join", "b"), ("failure", "a"), ("election", "b")]

    def test_leave_gracefully(self):
        svc = self._svc()
        svc.join("a", position=1)
        svc.leave("a")
        with pytest.raises(RingError):
            svc.state_of("a")

    def test_double_fail_is_noop(self):
        svc = self._svc()
        svc.join("a", position=1)
        svc.join("b", position=2)
        svc.fail("a")
        svc.fail("a")  # second fail must not raise
        assert len([e for e in svc.events if e.kind == "failure"]) == 1

    def test_invalid_timeout_rejected(self):
        ring = ConsistentHashRing(HashSpace(100))
        with pytest.raises(RingError):
            MembershipService(ring, heartbeat_timeout=0)
