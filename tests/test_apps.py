"""Tests for the benchmark applications on the functional engine."""

import numpy as np
import pytest

from repro.apps.grep import grep_job
from repro.apps.invertedindex import inverted_index_job
from repro.apps.kmeans import kmeans_driver, parse_points
from repro.apps.logreg import logreg_driver, parse_labeled, _sigmoid
from repro.apps.pagerank import pagerank_driver, parse_adjacency
from repro.apps.sort_app import sort_job, sorted_output
from repro.apps.wordcount import wordcount_job
from repro.apps.workloads import (
    bimodal_keys,
    documents,
    graph_edges,
    labeled_points,
    pack_records,
    points,
    text_corpus,
)
from repro.common.config import CacheConfig, ClusterConfig, DFSConfig, SchedulerConfig
from repro.mapreduce.api import EclipseMR

CFG = ClusterConfig(
    num_nodes=6,
    rack_size=3,
    dfs=DFSConfig(block_size=2048),
    cache=CacheConfig(capacity_per_server=1024 * 1024),
    scheduler=SchedulerConfig(window_tasks=8, num_bins=64),
)


def cluster():
    return EclipseMR(workers=6, scheduler="laf", config=CFG)


class TestWorkloads:
    def test_pack_records_alignment(self):
        recs = [b"record-%d" % i for i in range(50)]
        data = pack_records(recs, 64)
        assert len(data) % 64 == 0
        # Every 64-byte block splits into whole records.
        for off in range(0, len(data), 64):
            block = data[off : off + 64]
            for line in block.split(b"\n"):
                assert line == b"" or line.startswith(b"record-")

    def test_pack_records_roundtrip(self):
        recs = [f"r{i}".encode() for i in range(100)]
        data = pack_records(recs, 32)
        recovered = [l for l in data.split(b"\n") if l]
        assert recovered == recs

    def test_pack_rejects_oversized(self):
        with pytest.raises(ValueError):
            pack_records([b"x" * 100], 64)

    def test_pack_rejects_newlines(self):
        with pytest.raises(ValueError):
            pack_records([b"a\nb"], 64)

    def test_text_corpus_deterministic(self):
        assert text_corpus(1, num_words=100) == text_corpus(1, num_words=100)
        assert text_corpus(1, num_words=100) != text_corpus(2, num_words=100)

    def test_zipf_skews_word_frequency(self):
        from collections import Counter

        lines = text_corpus(3, num_words=5000, vocab_size=100, zipf_a=1.5)
        counts = Counter(w for l in lines for w in l.decode().split())
        top = counts.most_common(1)[0][1]
        assert top > 5000 / 100 * 5  # far above uniform share

    def test_graph_edges_valid(self):
        recs = graph_edges(4, num_nodes=50)
        adj = parse_adjacency(pack_records(recs, 1024))
        assert len(adj) == 50
        for src, dsts in adj:
            assert dsts, "every node has at least one out-edge"
            assert all(0 <= d < 50 for d in dsts)
            assert src not in dsts

    def test_points_shape(self):
        recs, centers = points(5, num_points=200, dim=3, num_clusters=4)
        assert len(recs) == 200
        assert centers.shape == (4, 3)
        arr = parse_points(pack_records(recs, 2048))
        assert arr.shape[1] == 3

    def test_labeled_points_separable(self):
        recs, w = labeled_points(6, num_points=300, dim=4)
        y, x = parse_labeled(pack_records(recs, 2048))
        assert set(np.unique(y)) <= {0.0, 1.0}
        agreement = ((x @ w > 0).astype(float) == y).mean()
        assert agreement > 0.99

    def test_bimodal_keys_two_modes(self):
        keys = np.array(bimodal_keys(7, count=4000, space_size=10_000))
        hist, _ = np.histogram(keys, bins=20, range=(0, 10_000))
        # Two populated regions, and the extremes nearly empty.
        assert hist[:2].sum() < 200
        assert hist.max() > 400


class TestWordCount:
    def test_against_python_counter(self):
        from collections import Counter

        lines = text_corpus(10, num_words=2000, vocab_size=50)
        data = pack_records(lines, 2048)
        expected = Counter(w for l in lines for w in l.decode().split())
        mr = cluster()
        mr.upload("corpus", data)
        result = mr.run(wordcount_job("corpus"))
        assert result.output == dict(expected)


class TestGrep:
    def test_matches_regex(self):
        recs = [b"error: disk failed", b"ok: all good", b"error: net down"]
        mr = cluster()
        mr.upload("log", pack_records(recs, 2048))
        result = mr.run(grep_job("log", r"^error:"))
        assert set(result.output) == {"error: disk failed", "error: net down"}

    def test_no_matches(self):
        mr = cluster()
        mr.upload("log", pack_records([b"nothing here"], 256))
        result = mr.run(grep_job("log", "absent"))
        assert result.output == {}


class TestInvertedIndex:
    def test_postings(self):
        recs = documents(11, num_docs=40, words_per_doc=12, vocab_size=30)
        mr = cluster()
        mr.upload("docs", pack_records(recs, 2048))
        result = mr.run(inverted_index_job("docs"))
        # Validate one posting list against a direct scan.
        word, postings = next(iter(result.output.items()))
        expected = sorted(
            {
                line.decode().split("\t")[0]
                for line in recs
                if word in line.decode().split("\t")[1].split()
            }
        )
        assert postings == expected

    def test_posting_lists_sorted_unique(self):
        recs = documents(12, num_docs=20)
        mr = cluster()
        mr.upload("docs", pack_records(recs, 2048))
        result = mr.run(inverted_index_job("docs"))
        for postings in result.output.values():
            assert postings == sorted(set(postings))


class TestSort:
    def test_total_order(self):
        rng = np.random.default_rng(13)
        recs = [f"{rng.integers(0, 10**9):010d}".encode() for _ in range(500)]
        mr = cluster()
        mr.upload("keys", pack_records(recs, 2048))
        result = mr.run(sort_job("keys"))
        out = sorted_output(result.output)
        assert out == sorted(r.decode() for r in recs)

    def test_duplicates_preserved(self):
        recs = [b"dup", b"dup", b"aaa"]
        mr = cluster()
        mr.upload("keys", pack_records(recs, 2048))
        out = sorted_output(mr.run(sort_job("keys")).output)
        assert out == ["aaa", "dup", "dup"]


class TestKMeans:
    def test_converges_to_true_centers(self):
        recs, centers = points(20, num_points=600, dim=2, num_clusters=3, spread=0.02)
        mr = cluster()
        mr.upload("pts", pack_records(recs, 2048))
        rng = np.random.default_rng(0)
        init = rng.random((3, 2))
        driver = kmeans_driver(mr, "pts", init, iterations=15, tolerance=1e-6)
        final = np.asarray(driver.run(init))
        # Each true center has a converged centroid nearby.
        for c in centers:
            assert np.min(np.linalg.norm(final - c, axis=1)) < 0.1

    def test_matches_reference_single_iteration(self):
        """One MapReduce iteration equals a NumPy Lloyd's step."""
        recs, _ = points(21, num_points=300, dim=2, num_clusters=3)
        data = pack_records(recs, 2048)
        all_pts = parse_points(data)
        init = np.array([[0.2, 0.2], [0.5, 0.5], [0.8, 0.8]])

        d2 = ((all_pts[:, None, :] - init[None, :, :]) ** 2).sum(axis=2)
        nearest = d2.argmin(axis=1)
        expected = np.array(
            [
                all_pts[nearest == c].mean(axis=0) if (nearest == c).any() else init[c]
                for c in range(3)
            ]
        )

        mr = cluster()
        mr.upload("pts", data)
        driver = kmeans_driver(mr, "pts", init, iterations=1)
        result = np.asarray(driver.run(init))
        assert np.allclose(result, expected, atol=1e-9)

    def test_iteration_outputs_cached(self):
        recs, _ = points(22, num_points=200)
        mr = cluster()
        mr.upload("pts", pack_records(recs, 2048))
        init = np.random.default_rng(1).random((3, 2))
        driver = kmeans_driver(mr, "pts", init, iterations=3)
        driver.run(init)
        assert driver.iterations_run == 3
        # A fresh driver on the same cluster resumes from the stored outputs.
        driver2 = kmeans_driver(mr, "pts", init, iterations=3)
        final2 = driver2.run(init)
        assert driver2.iterations_resumed == 3
        assert np.allclose(final2, driver.history[-1].state)


class TestPageRank:
    def _ranks_reference(self, adj, n, iters):
        ranks = {i: 1.0 / n for i in range(n)}
        for _ in range(iters):
            contrib = {i: 0.0 for i in range(n)}
            for src, dsts in adj:
                share = ranks[src] / len(dsts)
                for d in dsts:
                    contrib[d] += share
            new = dict(ranks)
            touched = {s for s, _ in adj} | {d for _, ds in adj for d in ds}
            for i in touched:
                new[i] = 0.15 / n + 0.85 * contrib[i]
            ranks = new
        return ranks

    def test_matches_reference(self):
        recs = graph_edges(30, num_nodes=40, avg_out_degree=3)
        data = pack_records(recs, 2048)
        adj = parse_adjacency(data)
        mr = cluster()
        mr.upload("graph", data)
        driver = pagerank_driver(mr, "graph", num_nodes=40, iterations=3)
        final = driver.run({i: 1.0 / 40 for i in range(40)})
        expected = self._ranks_reference(adj, 40, 3)
        for node, rank in expected.items():
            assert final[node] == pytest.approx(rank, rel=1e-9)

    def test_ranks_sum_reasonable(self):
        recs = graph_edges(31, num_nodes=30)
        mr = cluster()
        mr.upload("graph", pack_records(recs, 2048))
        driver = pagerank_driver(mr, "graph", num_nodes=30, iterations=5)
        final = driver.run({i: 1.0 / 30 for i in range(30)})
        assert 0.5 < sum(final.values()) < 1.5


class TestLogisticRegression:
    def test_loss_decreases_and_classifies(self):
        recs, true_w = labeled_points(40, num_points=500, dim=3)
        data = pack_records(recs, 2048)
        y, x = parse_labeled(data)
        mr = cluster()
        mr.upload("pts", data)
        driver = logreg_driver(mr, "pts", dim=3, iterations=25, learning_rate=1.0)
        w = np.asarray(driver.run(np.zeros(3)))
        acc = ((_sigmoid(x @ w) > 0.5).astype(float) == y).mean()
        assert acc > 0.9

    def test_gradient_matches_numpy(self):
        recs, _ = labeled_points(41, num_points=200, dim=2)
        data = pack_records(recs, 2048)
        y, x = parse_labeled(data)
        w0 = np.array([0.3, -0.2])
        expected_grad = x.T @ (_sigmoid(x @ w0) - y)

        mr = cluster()
        mr.upload("pts", data)
        driver = logreg_driver(mr, "pts", dim=2, iterations=1, learning_rate=0.5)
        w1 = np.asarray(driver.run(w0))
        assert np.allclose(w1, w0 - 0.5 * expected_grad / 200, atol=1e-9)
