"""Tests for task tracing and the Gantt renderer."""

from repro.common.config import CacheConfig, ClusterConfig, DFSConfig, SchedulerConfig
from repro.common.units import GB, MB
from repro.perfmodel.engine import PerfEngine, SimJobSpec
from repro.perfmodel.framework import eclipse_framework
from repro.perfmodel.placement import dht_layout
from repro.perfmodel.profiles import APP_PROFILES
from repro.perfmodel.trace import TaskRecord, TaskTrace, gantt


def traced_run(blocks=16, scheduler="laf"):
    config = ClusterConfig(
        num_nodes=4,
        rack_size=2,
        map_slots_per_node=2,
        reduce_slots_per_node=2,
        dfs=DFSConfig(block_size=128 * MB),
        cache=CacheConfig(capacity_per_server=1 * GB, icache_fraction=1.0),
        scheduler=SchedulerConfig(window_tasks=16),
        page_cache_per_node=1 * GB,
    )
    engine = PerfEngine(config, eclipse_framework(scheduler))
    engine.trace = TaskTrace()
    layout = dht_layout(engine.space, engine.ring, "in", blocks, config.dfs.block_size)
    timing = engine.run_job(SimJobSpec(app=APP_PROFILES["wordcount"], tasks=layout, label="wc"))
    return engine, timing


class TestTaskTrace:
    def test_records_every_task(self):
        engine, timing = traced_run()
        trace = engine.trace
        maps = [r for r in trace.records if r.kind == "map"]
        reduces = [r for r in trace.records if r.kind == "reduce"]
        assert len(maps) == timing.map_tasks
        assert len(reduces) == timing.reduce_tasks

    def test_lifecycle_ordering(self):
        engine, _ = traced_run()
        for rec in engine.trace.records:
            assert rec.started_at is not None and rec.done_at is not None
            assert rec.scheduled_at <= rec.started_at <= rec.done_at
            assert rec.server >= 0

    def test_waits_nonnegative_and_bounded_by_makespan(self):
        engine, timing = traced_run()
        trace = engine.trace
        assert all(r.wait >= 0 for r in trace.records)
        assert trace.makespan() <= timing.makespan + 1e-9

    def test_slot_pressure_creates_waits(self):
        # 16 tasks over 8 map slots: at least one task queues.
        engine, _ = traced_run(blocks=16)
        assert engine.trace.total_wait() > 0

    def test_by_server_partition(self):
        engine, _ = traced_run()
        by_server = engine.trace.by_server()
        assert sum(len(v) for v in by_server.values()) == len(engine.trace)

    def test_stragglers_empty_for_uniform_tasks(self):
        engine, _ = traced_run()
        maps_only = TaskTrace()
        maps_only.records = [r for r in engine.trace.records if r.kind == "map"]
        # Uniform blocks, no compute skew: nothing is 3x the median.
        assert maps_only.stragglers(factor=3.0) == []

    def test_trace_off_by_default(self):
        config = ClusterConfig(num_nodes=2, rack_size=2)
        engine = PerfEngine(config, eclipse_framework())
        assert engine.trace is None


class TestGantt:
    def test_renders_rows_per_server(self):
        engine, _ = traced_run()
        text = gantt(engine.trace, width=40)
        assert "task timeline" in text
        rows = [l for l in text.splitlines() if l.strip().startswith("node")]
        assert len(rows) == len(engine.trace.by_server())
        for row in rows:
            bar = row.split("|")[1]
            assert len(bar) == 40
            assert "#" in bar

    def test_empty_trace(self):
        assert gantt(TaskTrace()) == "(no completed tasks)"

    def test_max_servers_elision(self):
        trace = TaskTrace()
        for s in range(25):
            rec = trace.open(f"t{s}", "map", s, 0.0)
            rec.started_at = 0.0
            rec.done_at = 1.0
        text = gantt(trace, max_servers=10)
        assert "more servers" in text
