"""Property tests for the length-prefixed wire framing.

The :class:`FrameDecoder` is a pure state machine (no sockets), so
hypothesis can feed it payloads chopped into arbitrary chunkings --
including chunks that split the 8-byte header -- and assert exact
round-trips.  The socket paths are covered with ``socketpair``.
"""

import socket
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import FramingError
from repro.net.framing import (
    HEADER_SIZE,
    MAGIC,
    VERSION,
    FrameDecoder,
    encode_frame,
    paginate,
    read_frame,
    write_frame,
)

payloads = st.binary(min_size=0, max_size=4096)


def chop(data: bytes, cut_points: list[int]) -> list[bytes]:
    """Split ``data`` at the given (sorted, deduplicated) offsets."""
    cuts = sorted({c % (len(data) + 1) for c in cut_points})
    bounds = [0] + cuts + [len(data)]
    return [data[a:b] for a, b in zip(bounds, bounds[1:])]


class TestFrameDecoder:
    @given(payloads)
    def test_single_frame_round_trips(self, payload):
        dec = FrameDecoder()
        assert dec.feed(encode_frame(payload)) == [payload]
        assert dec.at_boundary()

    @given(st.lists(payloads, min_size=1, max_size=5))
    def test_concatenated_frames_round_trip(self, items):
        wire = b"".join(encode_frame(p) for p in items)
        dec = FrameDecoder()
        assert dec.feed(wire) == items
        assert dec.frames_decoded == len(items)

    @given(st.lists(payloads, min_size=1, max_size=4),
           st.lists(st.integers(min_value=0, max_value=2**16), max_size=16))
    @settings(max_examples=200)
    def test_arbitrary_chunking_round_trips(self, items, cut_points):
        """Any partition of the byte stream -- short reads, split headers,
        multiple frames per chunk -- decodes to the same payload sequence."""
        wire = b"".join(encode_frame(p) for p in items)
        dec = FrameDecoder()
        out = []
        for chunk in chop(wire, cut_points):
            out.extend(dec.feed(chunk))
        assert out == items
        assert dec.at_boundary()
        assert dec.bytes_fed == len(wire)

    @given(payloads)
    def test_byte_at_a_time(self, payload):
        dec = FrameDecoder()
        out = []
        for i in range(len(wire := encode_frame(payload))):
            out.extend(dec.feed(wire[i : i + 1]))
        assert out == [payload]

    def test_payload_larger_than_recv_buffer(self):
        # Larger than the 64 KiB socket recv chunk: must still round-trip.
        payload = bytes(range(256)) * 1024  # 256 KiB
        dec = FrameDecoder()
        assert dec.feed(encode_frame(payload)) == [payload]

    def test_bad_magic_rejected(self):
        bad = b"XYZ" + bytes([VERSION]) + struct.pack("!I", 0)
        with pytest.raises(FramingError, match="magic"):
            FrameDecoder().feed(bad)

    def test_bad_version_rejected(self):
        bad = MAGIC + bytes([VERSION + 1]) + struct.pack("!I", 0)
        with pytest.raises(FramingError, match="version"):
            FrameDecoder().feed(bad)

    def test_oversized_length_rejected_before_buffering(self):
        huge = MAGIC + bytes([VERSION]) + struct.pack("!I", 2**31)
        with pytest.raises(FramingError, match="exceeds"):
            FrameDecoder(max_frame_bytes=1024).feed(huge)

    @given(st.binary(min_size=1, max_size=HEADER_SIZE - 1))
    def test_partial_header_is_not_a_frame(self, prefix):
        dec = FrameDecoder()
        # A partial header can never complete a frame (it may or may not
        # be rejectable yet, depending on whether the magic is visible).
        try:
            assert dec.feed(prefix) == []
        except FramingError:
            assert prefix[: len(MAGIC)] != MAGIC[: len(prefix)]

    def test_encode_rejects_oversized_payload(self):
        with pytest.raises(FramingError):
            encode_frame(b"x" * 100, max_frame_bytes=10)


class TestSocketFraming:
    def test_write_then_read(self):
        a, b = socket.socketpair()
        try:
            payload = b"hello cluster" * 5000  # > one recv chunk
            write_frame(a, payload)
            assert read_frame(b) == payload
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert read_frame(b) is None
        finally:
            b.close()

    def test_eof_mid_frame_raises(self):
        a, b = socket.socketpair()
        try:
            wire = encode_frame(b"truncated payload")
            a.sendall(wire[:-3])
            a.close()
            with pytest.raises(FramingError):
                read_frame(b)
        finally:
            b.close()


class TestPaginate:
    """``paginate`` slices a payload into frame-sized pages, zero-copy."""

    @given(payloads, st.integers(min_value=1, max_value=512))
    def test_pages_reassemble_exactly(self, payload, page_bytes):
        pages = list(paginate(payload, page_bytes))
        assert b"".join(bytes(p) for p in pages) == payload
        assert all(1 <= len(p) <= page_bytes for p in pages)

    def test_pages_are_views_not_copies(self):
        payload = bytearray(b"abcdefgh" * 16)
        pages = list(paginate(payload, 32))
        assert all(isinstance(p, memoryview) for p in pages)
        payload[0] = ord("Z")  # views see writes to the backing buffer
        assert bytes(pages[0])[0] == ord("Z")

    def test_each_page_fits_one_frame(self):
        """A paged payload always survives the frame encoder page by
        page -- that is the contract the stream transport builds on."""
        payload = b"q" * 1000
        for page in paginate(payload, 64):
            encode_frame(bytes(page), max_frame_bytes=64)

    def test_zero_page_size_rejected(self):
        with pytest.raises(FramingError):
            list(paginate(b"abc", 0))
