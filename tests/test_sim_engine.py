"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.engine import AllOf, AnyOf, Interrupt, Simulation


class TestEvents:
    def test_succeed_and_value(self):
        sim = Simulation()
        ev = sim.event()
        assert not ev.triggered
        ev.succeed(42)
        assert ev.triggered and ev.ok
        assert ev.value == 42

    def test_double_trigger_rejected(self):
        sim = Simulation()
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_requires_exception(self):
        sim = Simulation()
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_value_before_trigger_raises(self):
        sim = Simulation()
        with pytest.raises(SimulationError):
            _ = sim.event().value

    def test_negative_timeout_rejected(self):
        sim = Simulation()
        with pytest.raises(SimulationError):
            sim.timeout(-1)


class TestProcesses:
    def test_timeout_advances_clock(self):
        sim = Simulation()

        def body(sim):
            yield sim.timeout(3.0)
            return sim.now

        p = sim.process(body(sim))
        assert sim.run(p) == 3.0
        assert sim.now == 3.0

    def test_sequential_timeouts(self):
        sim = Simulation()
        trace = []

        def body(sim):
            for d in (1.0, 2.0, 0.5):
                yield sim.timeout(d)
                trace.append(sim.now)

        sim.process(body(sim))
        sim.run()
        assert trace == [1.0, 3.0, 3.5]

    def test_process_return_value(self):
        sim = Simulation()

        def body(sim):
            yield sim.timeout(1)
            return "done"

        assert sim.run(sim.process(body(sim))) == "done"

    def test_process_exception_propagates_to_waiter(self):
        sim = Simulation()

        def failing(sim):
            yield sim.timeout(1)
            raise ValueError("boom")

        def waiter(sim):
            yield sim.process(failing(sim))

        with pytest.raises(ValueError, match="boom"):
            sim.run(sim.process(waiter(sim)))

    def test_unwaited_failure_surfaces_at_run(self):
        sim = Simulation()

        def failing(sim):
            yield sim.timeout(1)
            raise ValueError("boom")

        p = sim.process(failing(sim))
        sim.run()
        assert p.triggered and not p.ok
        assert isinstance(p.value, ValueError)

    def test_join_another_process(self):
        sim = Simulation()

        def child(sim):
            yield sim.timeout(5)
            return 99

        def parent(sim):
            value = yield sim.process(child(sim))
            return (sim.now, value)

        assert sim.run(sim.process(parent(sim))) == (5.0, 99)

    def test_yield_non_event_fails_process(self):
        sim = Simulation()

        def bad(sim):
            yield 123

        p = sim.process(bad(sim))
        sim.run()
        assert not p.ok
        assert isinstance(p.value, SimulationError)

    def test_non_generator_rejected(self):
        sim = Simulation()
        with pytest.raises(SimulationError):
            sim.process(lambda: None)  # type: ignore[arg-type]

    def test_cross_simulation_event_rejected(self):
        sim1, sim2 = Simulation(), Simulation()

        def bad(sim):
            yield sim2.timeout(1)

        p = sim1.process(bad(sim1))
        sim1.run()
        assert not p.ok


class TestInterrupts:
    def test_interrupt_wakes_sleeper(self):
        sim = Simulation()
        log = []

        def sleeper(sim):
            try:
                yield sim.timeout(100)
            except Interrupt as intr:
                log.append((sim.now, intr.cause))

        def interrupter(sim, target):
            yield sim.timeout(2)
            target.interrupt("wake up")

        target = sim.process(sleeper(sim))
        sim.process(interrupter(sim, target))
        sim.run()
        assert log == [(2.0, "wake up")]

    def test_stale_wakeup_ignored_after_interrupt(self):
        sim = Simulation()
        resumed = []

        def sleeper(sim):
            try:
                yield sim.timeout(10)
                resumed.append("timeout")
            except Interrupt:
                yield sim.timeout(100)
                resumed.append("after-interrupt")

        def interrupter(sim, target):
            yield sim.timeout(1)
            target.interrupt()

        target = sim.process(sleeper(sim))
        sim.process(interrupter(sim, target))
        sim.run()
        # The original 10s timeout fires at t=10 but must not resume the
        # process, which by then waits on the 100s sleep.
        assert resumed == ["after-interrupt"]

    def test_interrupt_completed_process_is_noop(self):
        sim = Simulation()

        def quick(sim):
            yield sim.timeout(1)

        p = sim.process(quick(sim))
        sim.run()
        p.interrupt()  # must not raise
        sim.run()


class TestConditions:
    def test_allof_collects_values(self):
        sim = Simulation()

        def child(sim, d):
            yield sim.timeout(d)
            return d

        def parent(sim):
            vals = yield AllOf([sim.process(child(sim, d)) for d in (3, 1, 2)])
            return (sim.now, vals)

        now, vals = sim.run(sim.process(parent(sim)))
        assert now == 3.0
        assert vals == [3, 1, 2]  # ordered as passed, not as completed

    def test_anyof_returns_first(self):
        sim = Simulation()

        def child(sim, d):
            yield sim.timeout(d)
            return d

        def parent(sim):
            idx, val = yield AnyOf([sim.process(child(sim, d)) for d in (3, 1, 2)])
            return (sim.now, idx, val)

        assert sim.run(sim.process(parent(sim))) == (1.0, 1, 1)

    def test_empty_condition_rejected(self):
        with pytest.raises(SimulationError):
            AllOf([])

    def test_allof_fails_on_child_failure(self):
        sim = Simulation()

        def bad(sim):
            yield sim.timeout(1)
            raise RuntimeError("child failed")

        def good(sim):
            yield sim.timeout(5)

        def parent(sim):
            yield AllOf([sim.process(bad(sim)), sim.process(good(sim))])

        with pytest.raises(RuntimeError, match="child failed"):
            sim.run(sim.process(parent(sim)))


class TestRun:
    def test_run_until_time(self):
        sim = Simulation()
        fired = []

        def body(sim):
            while True:
                yield sim.timeout(1)
                fired.append(sim.now)

        sim.process(body(sim))
        sim.run(until=3.5)
        assert fired == [1.0, 2.0, 3.0]
        assert sim.now == 3.5

    def test_run_until_past_rejected(self):
        sim = Simulation()
        sim.run(until=5)
        with pytest.raises(SimulationError):
            sim.run(until=1)

    def test_deadlock_detected(self):
        sim = Simulation()

        def stuck(sim):
            yield sim.event()  # nobody will fire this

        p = sim.process(stuck(sim))
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run(p)

    def test_peek_and_step(self):
        sim = Simulation()
        sim.timeout(4.0)
        assert sim.peek() == 4.0
        sim.step()
        assert sim.now == 4.0
        assert sim.peek() == float("inf")
        with pytest.raises(SimulationError):
            sim.step()

    def test_event_ordering_fifo_at_same_time(self):
        sim = Simulation()
        order = []

        def body(sim, tag):
            yield sim.timeout(1.0)
            order.append(tag)

        for tag in "abc":
            sim.process(body(sim, tag))
        sim.run()
        assert order == ["a", "b", "c"]
