"""Small-scale integration tests for the figure experiment modules.

The full-scale shape assertions live in ``benchmarks/``; these verify the
experiment plumbing (series shapes, table rendering, determinism) fast.
"""

import numpy as np
import pytest

from repro.experiments.common import ExperimentResult, format_rows
from repro.experiments.fig3_cdf import run as run_fig3
from repro.experiments.fig5_io import DFSIO, run as run_fig5
from repro.experiments.fig9_frameworks import normalized


class TestExperimentResult:
    def test_add_and_format(self):
        r = ExperimentResult(title="T", x_label="x", x_values=[1, 2])
        r.add("a", [1.0, 2.0])
        r.note("hello")
        text = format_rows(r)
        assert "T" in text and "hello" in text
        assert "1 s" in text

    def test_format_units(self):
        r = ExperimentResult(title="T", x_label="x", x_values=[1])
        r.add("a", [12.5])
        assert "12.5%" in format_rows(r, unit="%")


class TestFig3:
    def test_partition_tiles_space(self):
        result = run_fig3(accesses=4000)
        starts = result.series["range start"]
        ends = result.series["range end"]
        assert starts[0] == 0 and ends[-1] == 140
        for i in range(len(starts) - 1):
            assert ends[i] == starts[i + 1]

    def test_equal_probability(self):
        result = run_fig3(accesses=4000)
        for mass in result.series["probability"]:
            assert mass == pytest.approx(0.2, abs=0.05)

    def test_deterministic(self):
        a = run_fig3(accesses=2000)
        b = run_fig3(accesses=2000)
        assert a.series["range start"] == b.series["range start"]


class TestFig5:
    def test_dfsio_profile_free_cpu(self):
        assert DFSIO.map_cpu_seconds(128 * 1024 * 1024) < 0.01
        assert DFSIO.shuffle_ratio == 0.0

    def test_small_sweep_shapes(self):
        result = run_fig5(node_counts=(4, 8), blocks_per_node=2)
        assert len(result.x_values) == 2
        assert set(result.series) == {
            "DHT/task (MB/s)", "HDFS/task (MB/s)", "DHT/job (MB/s)", "HDFS/job (MB/s)"
        }
        # The per-task metric is per-disk streaming throughput: roughly the
        # configured disk bandwidth (140 MB/s), independent of cluster size.
        for kind in ("DHT", "HDFS"):
            for task_v in result.series[f"{kind}/task (MB/s)"]:
                assert 100 < task_v < 150
        # The job metric aggregates all spindles minus overheads, so it can
        # never exceed nodes x disk bandwidth.
        for nodes, job_v in zip(result.x_values, result.series["DHT/job (MB/s)"]):
            assert job_v < nodes * 150


class TestFig9Normalization:
    def test_normalized_max_is_one(self):
        r = ExperimentResult(title="T", x_label="app", x_values=["a", "b"])
        r.add("X", [10.0, 40.0])
        r.add("Y", [20.0, 20.0])
        norm = normalized(r)
        assert norm["Y"][0] == 1.0 and norm["X"][0] == 0.5
        assert norm["X"][1] == 1.0 and norm["Y"][1] == 0.5

    def test_normalized_handles_nan(self):
        r = ExperimentResult(title="T", x_label="app", x_values=["a"])
        r.add("X", [10.0])
        r.add("Y", [float("nan")])
        norm = normalized(r)
        assert norm["X"][0] == 1.0
        assert np.isnan(norm["Y"][0])
