"""Codec seam tests: round-trips, bail-outs, and compressed RPC traffic."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import NetConfig
from repro.common.errors import ConfigError, FramingError
from repro.net.codec import (
    ZlibCodec,
    codec_by_name,
    decode_payload,
    encode_payload,
    lz4_available,
    resolve_codec,
)
from repro.net.framing import FrameDecoder, encode_frame
from repro.net.rpc import Blob, RpcClient, RpcServer, Stream
from repro.sim.metrics import MetricsRegistry


class TestResolve:
    def test_none_disables_the_seam(self):
        assert resolve_codec("none") is None

    def test_zlib_always_available(self):
        assert resolve_codec("zlib", 6).name == "zlib"

    def test_auto_falls_back_when_lz4_is_missing(self):
        codec = resolve_codec("auto")
        if lz4_available():
            assert codec.name == "lz4"
        else:
            assert codec.name == "zlib"

    def test_explicit_lz4_without_the_module_is_a_config_error(self):
        if lz4_available():
            pytest.skip("lz4 importable here")
        with pytest.raises(ConfigError):
            resolve_codec("lz4")

    def test_unknown_codec_names(self):
        with pytest.raises(ConfigError):
            resolve_codec("snappy")
        with pytest.raises(FramingError):
            codec_by_name("snappy")

    def test_netconfig_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            NetConfig(compression="snappy")
        with pytest.raises(ConfigError):
            NetConfig(compression_level=0)
        with pytest.raises(ConfigError):
            NetConfig(compression_min_bytes=-1)


class TestEncodePayload:
    def test_compressible_payload_compresses(self):
        data = b"spam " * 4096
        wire, enc = encode_payload(data, ZlibCodec())
        assert enc == "zlib"
        assert len(wire) < len(data)
        assert decode_payload(wire, enc) == data

    def test_incompressible_payload_ships_raw(self):
        import random
        data = random.Random(7).randbytes(4096)
        wire, enc = encode_payload(data, ZlibCodec())
        assert enc is None
        assert wire is data  # zero-copy: the original object, untouched

    def test_below_min_bytes_skips_the_attempt(self):
        data = b"a" * 100
        wire, enc = encode_payload(data, ZlibCodec(), min_bytes=101)
        assert enc is None and wire is data

    def test_no_codec_is_identity(self):
        data = b"x" * 64
        assert encode_payload(data, None) == (data, None)
        assert decode_payload(data, None) is data

    def test_corrupt_payload_is_a_framing_error(self):
        with pytest.raises(FramingError):
            decode_payload(b"not zlib at all", "zlib")


class TestRoundTripProperties:
    """compress -> frame -> reassemble (chunked arbitrarily) -> decompress."""

    @given(
        payload=st.binary(min_size=0, max_size=8192),
        repeat=st.integers(min_value=1, max_value=50),
        chunk_size=st.integers(min_value=1, max_value=512),
        level=st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=60, deadline=None)
    def test_zlib_round_trip_through_frames(self, payload, repeat, chunk_size, level):
        data = payload * repeat
        wire, enc = encode_payload(data, ZlibCodec(level))
        framed = encode_frame(wire)
        decoder = FrameDecoder()
        frames = []
        for i in range(0, len(framed), chunk_size):
            frames.extend(decoder.feed(framed[i:i + chunk_size]))
        assert len(frames) == 1
        assert bytes(decode_payload(frames[0], enc)) == data

    @given(payload=st.binary(min_size=0, max_size=4096))
    @settings(max_examples=60, deadline=None)
    def test_bail_out_never_inflates_the_wire(self, payload):
        wire, enc = encode_payload(payload, ZlibCodec())
        assert len(wire) <= len(payload)
        assert bytes(decode_payload(wire, enc)) == payload


COMPRESSED_NET = NetConfig(compression="zlib", compression_min_bytes=64)


@pytest.fixture()
def compressed_server():
    def fetch(n):
        return Blob(b"block " * n)

    def stream(n):
        pages = [b"page %d " % i * 64 for i in range(n)]
        return Stream(iter(pages), value={"pages": n})

    def push(payload):
        return len(bytes(payload))

    srv = RpcServer({"fetch": fetch, "stream": stream, "push": push},
                    net=COMPRESSED_NET, metrics=MetricsRegistry()).start()
    yield srv
    srv.stop()


class TestCompressedRpc:
    def test_blob_response_round_trips(self, compressed_server):
        metrics = MetricsRegistry()
        client = RpcClient(compressed_server.host, compressed_server.port,
                           net=COMPRESSED_NET, metrics=metrics)
        try:
            value = client.call("fetch", {"n": 1000})
            assert bytes(value) == b"block " * 1000
        finally:
            client.close()
        counters = compressed_server._metrics.counters
        assert counters["net.pages_compressed"].value >= 1
        assert counters["net.bytes_wire"].value < counters["net.bytes_logical"].value

    def test_request_blob_round_trips(self, compressed_server):
        metrics = MetricsRegistry()
        client = RpcClient(compressed_server.host, compressed_server.port,
                           net=COMPRESSED_NET, metrics=metrics)
        try:
            payload = b"spill pair " * 2048
            assert client.call("push", blob=payload, blob_arg="payload") == len(payload)
        finally:
            client.close()
        counters = metrics.counters
        assert counters["net.pages_compressed"].value == 1
        assert counters["net.bytes_logical"].value == len(payload)
        assert counters["net.bytes_wire"].value < len(payload)

    def test_stream_pages_round_trip(self, compressed_server):
        client = RpcClient(compressed_server.host, compressed_server.port,
                           net=COMPRESSED_NET)
        try:
            result = client.call("stream", {"n": 5})
            assert result.value == {"pages": 5}
            assert result.join() == b"".join(b"page %d " % i * 64 for i in range(5))
        finally:
            client.close()

    def test_uncompressed_client_against_compressed_server(self, compressed_server):
        # The wire is self-describing: a compression-off client still
        # decodes the server's tagged payloads, and its own raw blobs
        # are accepted untagged.
        client = RpcClient(compressed_server.host, compressed_server.port,
                           net=NetConfig())
        try:
            assert bytes(client.call("fetch", {"n": 500})) == b"block " * 500
            payload = b"raw push " * 512
            assert client.call("push", blob=payload, blob_arg="payload") == len(payload)
        finally:
            client.close()

    def test_tiny_blob_ships_raw(self, compressed_server):
        metrics = MetricsRegistry()
        client = RpcClient(compressed_server.host, compressed_server.port,
                           net=COMPRESSED_NET, metrics=metrics)
        try:
            assert client.call("push", blob=b"wee", blob_arg="payload") == 3
        finally:
            client.close()
        assert metrics.counters["net.pages_raw"].value == 1
        assert "net.pages_compressed" not in metrics.counters
