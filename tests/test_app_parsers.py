"""Property tests for the application record parsers.

The parsers sit between the DHT file system's raw blocks and the map
functions; they must tolerate padding, blank lines and any record content
the generators can emit.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.apps.kmeans import parse_points
from repro.apps.logreg import parse_labeled
from repro.apps.pagerank import parse_adjacency
from repro.apps.workloads import pack_records


@given(
    rows=st.lists(
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
            min_size=2, max_size=4,
        ),
        max_size=30,
    ),
    block_size=st.sampled_from([256, 1024]),
)
@settings(max_examples=60)
def test_parse_points_roundtrip(rows, block_size):
    dim = len(rows[0]) if rows else 2
    rows = [r for r in rows if len(r) == dim]
    recs = [",".join(f"{x:.6f}" for x in row).encode() for row in rows]
    recs = [r for r in recs if len(r) + 1 <= block_size]
    data = pack_records(recs, block_size)
    parsed = parse_points(data)
    assert parsed.shape[0] == len(recs)
    expected = [[float(f"{x:.6f}") for x in row] for row, rec in zip(rows, recs)]
    if len(recs):
        assert np.allclose(parsed, np.asarray(expected)[: len(recs)])


@given(
    entries=st.lists(
        st.tuples(
            st.integers(0, 1),
            st.lists(st.floats(-100, 100, allow_nan=False, allow_infinity=False),
                     min_size=3, max_size=3),
        ),
        max_size=25,
    ),
)
@settings(max_examples=50)
def test_parse_labeled_roundtrip(entries):
    recs = [
        (str(label) + "," + ",".join(f"{v:.6f}" for v in row)).encode()
        for label, row in entries
    ]
    data = pack_records(recs, 1024) if recs else b"\n"
    y, x = parse_labeled(data)
    assert len(y) == len(recs)
    for (label, _), got in zip(entries, y):
        assert got == float(label)


@given(
    adj=st.dictionaries(
        st.integers(0, 50),
        st.sets(st.integers(0, 50), min_size=1, max_size=5),
        max_size=20,
    ),
)
@settings(max_examples=50)
def test_parse_adjacency_roundtrip(adj):
    recs = [
        f"{src}\t{','.join(map(str, sorted(dsts)))}".encode()
        for src, dsts in adj.items()
    ]
    data = pack_records(recs, 1024) if recs else b"\n"
    parsed = dict(parse_adjacency(data))
    assert set(parsed) == set(adj)
    for src, dsts in adj.items():
        assert parsed[src] == sorted(dsts)


def test_parsers_tolerate_padding_and_blanks():
    assert parse_points(b"\n\n\n").size == 0
    y, x = parse_labeled(b"\n \n")
    assert len(y) == 0
    assert parse_adjacency(b"\n\n") == []
