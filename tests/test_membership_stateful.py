"""Stateful model of elastic membership: join / drain / kill, forever.

Hypothesis drives long random sequences of membership operations against
the *real* ring + LAF scheduler + a simulated block-holder table that
applies the coordinator's re-replication rule after every change.  The
invariants pin exactly what the elastic-membership tentpole promises:

* the ring's arcs always partition the full key space (every key owned,
  no key owned twice);
* the LAF hash key table always covers the space once and agrees with
  the live server set -- and, while *pristine* (no access recorded), it
  stays perfectly arc-aligned with the ring, which is what makes an
  idle-cluster join/drain bit-equal to a fresh cluster;
* after every membership change, every block's replica set is restored:
  each of the ring's placement targets holds a copy, and no copy was
  ever lost (drains hand off before leaving; kills leave a survivor
  because replication was restored after the previous step).
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.common.hashing import HashSpace
from repro.dht.ring import ConsistentHashRing
from repro.scheduler.laf import LAFScheduler

REPLICATION = 2  # owner + predecessor + successor, like the DFS default
NUM_BLOCKS = 12
MAX_WORKERS = 8
SIZE = 1 << 20  # small enough for len(arc); the properties are size-free


class MembershipModel(RuleBasedStateMachine):
    """Random join/drain/kill/access sequences with quiesce between ops."""

    def __init__(self):
        super().__init__()
        self.space = HashSpace(SIZE)
        self.ring = ConsistentHashRing(self.space)
        self.sched: LAFScheduler | None = None
        self.counter = 0
        self.blocks: dict[int, set[str]] = {}
        # True while every membership change since seeding was ring-aware
        # (join/drain).  A kill rides the failover path, which re-cuts from
        # the moving average instead of the ring (pinned PR-5 behavior),
        # so arc alignment is only promised while this holds.
        self.aligned = True

    def _fresh_node(self) -> str:
        """The next worker id whose default ring position is free."""
        while True:
            wid = f"worker-{self.counter}"
            self.counter += 1
            if self.space.key_of(wid) not in self.ring.positions:
                return wid

    @initialize(n=st.integers(2, 4))
    def boot(self, n):
        ids = [self._fresh_node() for _ in range(n)]
        for wid in ids:
            self.ring.add_node(wid)
        self.sched = LAFScheduler(self.space, ids, ring=self.ring)
        for i in range(NUM_BLOCKS):
            key = self.space.key_of(f"stateful-blk-{i}")
            self.blocks[key] = set(self.ring.replica_set(key, extra=REPLICATION))

    def _restore_replication(self):
        """The coordinator's post-change rule: copy every block to each
        placement target that misses it, sourcing from any current holder."""
        for key, holders in self.blocks.items():
            targets = set(self.ring.replica_set(key, extra=REPLICATION))
            missing = targets - holders
            if missing:
                assert holders, f"block {key} lost its last copy"
                holders |= missing

    @precondition(lambda self: len(self.ring) < MAX_WORKERS)
    @rule()
    def join(self):
        wid = self._fresh_node()
        pristine = self.sched._pristine()
        self.ring.add_node(wid)
        self.sched.add_server(wid, ring=self.ring)
        if pristine:
            self.aligned = True  # re-seeded from the post-join ring
        self._restore_replication()

    @precondition(lambda self: len(self.ring) > 2)
    @rule(data=st.data())
    def drain(self, data):
        wid = data.draw(st.sampled_from(sorted(self.ring.nodes)))
        # Graceful: hand every copy the drainee holds to its arc successor
        # *before* it leaves (the coordinator's handoff), so nothing is lost
        # even when the drainee was a block's only holder.
        successor = self.ring.successor(wid)
        pristine = self.sched._pristine()
        for holders in self.blocks.values():
            if wid in holders:
                holders.discard(wid)
                holders.add(successor)
        self.ring.remove_node(wid)
        self.sched.drain_server(wid, ring=self.ring)
        if pristine:
            self.aligned = True  # re-seeded from the post-drain ring
        self._restore_replication()

    @precondition(lambda self: len(self.ring) > 2)
    @rule(data=st.data())
    def kill(self, data):
        wid = data.draw(st.sampled_from(sorted(self.ring.nodes)))
        # Abrupt: the victim's copies are gone; failover re-cuts over the
        # survivors and re-replication must restore every block from them.
        for holders in self.blocks.values():
            holders.discard(wid)
        self.ring.remove_node(wid)
        self.sched.remove_server(wid)
        self.aligned = False
        self._restore_replication()

    @rule(seed=st.integers(0, 2**32 - 1))
    def access(self, seed):
        """Record real accesses so the table can go non-pristine and re-cut."""
        key = self.space.key_of(f"access-{seed}")
        assignment = self.sched.assign(hash_key=key)
        self.sched.notify_start(assignment.server)
        self.sched.notify_finish(assignment.server)

    # -- invariants --------------------------------------------------------------

    @invariant()
    def ring_arcs_partition_the_space(self):
        if self.sched is None:
            return
        assert sum(len(self.ring.range_of(n)) for n in self.ring.nodes) == \
            self.space.size

    @invariant()
    def laf_table_matches_membership(self):
        if self.sched is None:
            return
        assert set(self.sched.servers) == set(self.ring.nodes)
        part = self.sched.partition
        assert set(part.servers) == set(self.ring.nodes)
        assert part.boundaries[0] == 0 and part.boundaries[-1] == self.space.size
        assert sum(part.width_of(s) for s in part.servers) == self.space.size

    @invariant()
    def no_key_owned_twice(self):
        if self.sched is None:
            return
        part = self.sched.partition
        for probe in range(0, self.space.size, self.space.size // 16):
            owners = [s for s, (a, b) in zip(part.servers, part._segments())
                      if a <= part._rotate(probe) < b]
            assert len(owners) == 1, (probe, owners)

    @invariant()
    def pristine_table_is_arc_aligned(self):
        if self.sched is None or not self.sched._pristine() or not self.aligned:
            return
        for key in self.blocks:
            assert self.sched.partition.owner_of(key) == self.ring.owner_of(key)

    @invariant()
    def replica_sets_restored(self):
        if self.sched is None:
            return
        want = min(len(self.ring), 1 + REPLICATION)
        for key, holders in self.blocks.items():
            targets = set(self.ring.replica_set(key, extra=REPLICATION))
            assert targets <= holders, (key, targets, holders)
            assert len(targets) == want
            # Kills and drains scrub their copies eagerly, so a holder no
            # longer on the ring would be a leaked replica.
            assert holders <= set(self.ring.nodes), (key, holders)


TestMembershipModel = MembershipModel.TestCase
TestMembershipModel.settings = settings(
    max_examples=200, stateful_step_count=30, deadline=None
)
