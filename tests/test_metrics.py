"""Tests for the metrics primitives and the NameNode model."""

import threading

import pytest

from repro.common.errors import SimulationError
from repro.baselines.hdfs import NameNodeModel
from repro.sim.engine import AllOf, Simulation
from repro.sim.metrics import Counter, Gauge, Histogram, MetricsRegistry, TimeSeries


class TestCounter:
    def test_increments(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_set_tracks_extremes(self):
        g = Gauge()
        g.set(5)
        g.set(-2)
        g.set(3)
        assert g.value == 3
        assert g.max_seen == 5
        assert g.min_seen == -2

    def test_add(self):
        g = Gauge()
        g.add(4)
        g.add(-1)
        assert g.value == 3

    def test_never_set_extremes_are_zero(self):
        # Regression: these used to report -inf/+inf before any set().
        g = Gauge()
        assert g.max_seen == 0.0
        assert g.min_seen == 0.0

    def test_initial_value_does_not_count_as_observation(self):
        g = Gauge(7.0)
        assert g.max_seen == 0.0
        g.set(3.0)
        assert g.max_seen == 3.0
        assert g.min_seen == 3.0

    def test_concurrent_add_loses_no_updates(self):
        # Regression: add() was an unlocked read-modify-write, so two
        # writer threads (scheduler + RPC readers) could both read the
        # same old value and one increment would vanish.
        g = Gauge()
        threads_n, per_thread = 8, 5000

        def hammer():
            for _ in range(per_thread):
                g.add(1.0)

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert g.value == threads_n * per_thread
        assert g.max_seen == threads_n * per_thread

    def test_concurrent_set_extremes_stay_possible(self):
        # max_seen/min_seen must only ever hold values some writer set.
        g = Gauge()
        values = list(range(-50, 51))

        def hammer(offset):
            for v in values:
                g.set(float(v + offset))

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert g.max_seen == max(values) + 3
        assert g.min_seen == min(values)


class TestHistogram:
    def test_exact_below_cap(self):
        h = Histogram()
        for v in [5.0, 1.0, 3.0, 2.0, 4.0]:
            h.record(v)
        assert h.count == 5
        assert h.total() == 15.0
        assert h.mean() == 3.0
        assert h.percentile(0) == 1.0
        assert h.percentile(50) == 3.0
        assert h.percentile(100) == 5.0

    def test_empty(self):
        h = Histogram()
        assert h.count == 0
        assert h.total() == 0.0
        assert h.percentile(50) == 0.0
        assert h.summary()["max"] == 0.0

    def test_memory_bounded_over_a_million_records(self):
        # Regression: every sample used to be kept forever -- unbounded
        # memory in a long-running coordinator.  A small cap keeps the
        # test fast; the invariant is cap-independent.
        cap = 1024
        h = Histogram(max_samples=cap)
        n = 1_000_000
        for i in range(n):
            h.record(float(i % 1000))
        assert h.retained <= cap
        assert len(h.samples) <= cap
        # Exactness survives the bounded reservoir.
        assert h.count == n
        assert h.total() == float(sum(i % 1000 for i in range(n)))
        assert h.percentile(0) == 0.0
        assert h.percentile(100) == 999.0
        # Percentiles are approximate past the cap but must stay sane.
        assert 400.0 <= h.percentile(50) <= 600.0

    def test_eviction_is_deterministic(self):
        seq = [float((i * 37) % 101) for i in range(10_000)]
        a, b = Histogram(max_samples=64), Histogram(max_samples=64)
        for v in seq:
            a.record(v)
            b.record(v)
        assert a.samples == b.samples
        assert a.summary() == b.summary()

    def test_default_cap_high_enough_for_exact_bench_values(self):
        # Everything in-repo records far fewer samples than the default
        # cap, so existing tests/benches keep seeing exact percentiles.
        h = Histogram()
        for i in range(10_000):
            h.record(float(i))
        assert h.retained == 10_000
        assert h.percentile(50) == pytest.approx(4999.5)

    def test_rejects_tiny_cap(self):
        with pytest.raises(ValueError):
            Histogram(max_samples=1)

    def test_concurrent_record_keeps_exact_totals(self):
        h = Histogram(max_samples=128)
        threads_n, per_thread = 8, 2000

        def hammer():
            for _ in range(per_thread):
                h.record(1.0)

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == threads_n * per_thread
        assert h.total() == float(threads_n * per_thread)
        assert h.retained <= 128


class TestTimeSeries:
    def test_record_and_len(self):
        ts = TimeSeries()
        ts.record(0.0, 1.0)
        ts.record(1.0, 2.0)
        assert len(ts) == 2

    def test_rejects_out_of_order(self):
        ts = TimeSeries()
        ts.record(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.record(4.0, 1.0)

    def test_time_average_piecewise_constant(self):
        ts = TimeSeries()
        ts.record(0.0, 10.0)  # 10 for [0, 2)
        ts.record(2.0, 0.0)   # 0 for [2, 4)
        assert ts.time_average(until=4.0) == pytest.approx(5.0)

    def test_time_average_empty_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries().time_average()

    def test_as_arrays(self):
        ts = TimeSeries()
        ts.record(0.0, 1.0)
        t, v = ts.as_arrays()
        assert t.shape == v.shape == (1,)


class TestMetricsRegistry:
    def test_name_addressed(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(3)
        reg.counter("total").inc(4)
        assert reg.ratio("hits", "total") == pytest.approx(0.75)

    def test_ratio_zero_denominator(self):
        reg = MetricsRegistry()
        assert reg.ratio("a", "b") == 0.0

    def test_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(7)
        snap = reg.snapshot()
        assert snap["c"] == 1.0
        assert snap["g (gauge)"] == 7.0

    def test_stddev_helper(self):
        assert MetricsRegistry.stddev([1, 1, 1]) == 0.0
        assert MetricsRegistry.stddev([]) == 0.0

    def test_read_paths_do_not_create_entries(self):
        # Regression: peak/ratio/snapshot went through defaultdict
        # lookups, so a scrape materialized empty entries and changed the
        # key set the next snapshot reported.
        reg = MetricsRegistry()
        reg.counter("real").inc()
        assert reg.peak("never.set") == 0.0
        assert reg.ratio("no.hits", "no.total") == 0.0
        assert reg.ratio("no.hits", "real") == 0.0
        snap = reg.snapshot()
        reg.export()
        assert "never.set" not in reg.gauges
        assert "no.hits" not in reg.counters
        assert "no.total" not in reg.counters
        assert set(reg.counters) == {"real"}
        assert reg.snapshot() == snap

    def test_snapshot_exports_full_histogram_summary(self):
        reg = MetricsRegistry()
        for v in [1.0, 2.0, 3.0, 10.0]:
            reg.histogram("lat").record(v)
        snap = reg.snapshot()
        assert snap["lat (count)"] == 4.0
        assert snap["lat (mean)"] == 4.0
        assert snap["lat (p50)"] == 2.5
        assert snap["lat (max)"] == 10.0
        assert "lat (p90)" in snap and "lat (p99)" in snap

    def test_export_is_structured_and_json_safe(self):
        import json

        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(-1.5)
        reg.histogram("h").record(4.0)
        out = reg.export()
        assert out["counters"] == {"c": 2.0}
        assert out["gauges"]["g"] == {"value": -1.5, "max": -1.5, "min": -1.5}
        assert out["histograms"]["h"]["count"] == 1.0
        json.dumps(out)  # nothing live leaks out

    def test_accessors_share_one_object_across_threads(self):
        reg = MetricsRegistry()
        seen = []

        def touch():
            seen.append(reg.counter("shared"))

        threads = [threading.Thread(target=touch) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(c is seen[0] for c in seen)


class TestNameNodeModel:
    def test_serializes_concurrent_lookups(self):
        sim = Simulation()
        nn = NameNodeModel(sim, lookup_time=1.0)

        def client(sim, nn):
            yield from nn.lookup()

        def body(sim, nn):
            yield AllOf([sim.process(client(sim, nn)) for _ in range(5)])

        sim.run(sim.process(body(sim, nn)))
        # Five serialized 1 s operations: the last finishes at t = 5.
        assert sim.now == pytest.approx(5.0)
        assert nn.operations == 5

    def test_mean_wait_grows_with_contention(self):
        sim = Simulation()
        nn = NameNodeModel(sim, lookup_time=0.5)

        def client(sim, nn):
            yield from nn.lookup()

        def body(sim, nn):
            yield AllOf([sim.process(client(sim, nn)) for _ in range(10)])

        sim.run(sim.process(body(sim, nn)))
        # Waits are 0, .5, 1.0, ... 4.5 -> mean 2.25.
        assert nn.mean_wait == pytest.approx(2.25)

    def test_mean_wait_zero_when_uncontended(self):
        sim = Simulation()
        nn = NameNodeModel(sim, lookup_time=0.1)

        def body(sim, nn):
            yield from nn.lookup()
            yield from nn.lookup()

        sim.run(sim.process(body(sim, nn)))
        assert nn.mean_wait == 0.0

    def test_invalid_lookup_time(self):
        with pytest.raises(SimulationError):
            NameNodeModel(Simulation(), lookup_time=0)
