"""Tests for the metrics primitives and the NameNode model."""

import pytest

from repro.common.errors import SimulationError
from repro.baselines.hdfs import NameNodeModel
from repro.sim.engine import AllOf, Simulation
from repro.sim.metrics import Counter, Gauge, MetricsRegistry, TimeSeries


class TestCounter:
    def test_increments(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_set_tracks_extremes(self):
        g = Gauge()
        g.set(5)
        g.set(-2)
        g.set(3)
        assert g.value == 3
        assert g.max_seen == 5
        assert g.min_seen == -2

    def test_add(self):
        g = Gauge()
        g.add(4)
        g.add(-1)
        assert g.value == 3

    def test_never_set_extremes_are_zero(self):
        # Regression: these used to report -inf/+inf before any set().
        g = Gauge()
        assert g.max_seen == 0.0
        assert g.min_seen == 0.0

    def test_initial_value_does_not_count_as_observation(self):
        g = Gauge(7.0)
        assert g.max_seen == 0.0
        g.set(3.0)
        assert g.max_seen == 3.0
        assert g.min_seen == 3.0


class TestTimeSeries:
    def test_record_and_len(self):
        ts = TimeSeries()
        ts.record(0.0, 1.0)
        ts.record(1.0, 2.0)
        assert len(ts) == 2

    def test_rejects_out_of_order(self):
        ts = TimeSeries()
        ts.record(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.record(4.0, 1.0)

    def test_time_average_piecewise_constant(self):
        ts = TimeSeries()
        ts.record(0.0, 10.0)  # 10 for [0, 2)
        ts.record(2.0, 0.0)   # 0 for [2, 4)
        assert ts.time_average(until=4.0) == pytest.approx(5.0)

    def test_time_average_empty_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries().time_average()

    def test_as_arrays(self):
        ts = TimeSeries()
        ts.record(0.0, 1.0)
        t, v = ts.as_arrays()
        assert t.shape == v.shape == (1,)


class TestMetricsRegistry:
    def test_name_addressed(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(3)
        reg.counter("total").inc(4)
        assert reg.ratio("hits", "total") == pytest.approx(0.75)

    def test_ratio_zero_denominator(self):
        reg = MetricsRegistry()
        assert reg.ratio("a", "b") == 0.0

    def test_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(7)
        snap = reg.snapshot()
        assert snap["c"] == 1.0
        assert snap["g (gauge)"] == 7.0

    def test_stddev_helper(self):
        assert MetricsRegistry.stddev([1, 1, 1]) == 0.0
        assert MetricsRegistry.stddev([]) == 0.0


class TestNameNodeModel:
    def test_serializes_concurrent_lookups(self):
        sim = Simulation()
        nn = NameNodeModel(sim, lookup_time=1.0)

        def client(sim, nn):
            yield from nn.lookup()

        def body(sim, nn):
            yield AllOf([sim.process(client(sim, nn)) for _ in range(5)])

        sim.run(sim.process(body(sim, nn)))
        # Five serialized 1 s operations: the last finishes at t = 5.
        assert sim.now == pytest.approx(5.0)
        assert nn.operations == 5

    def test_mean_wait_grows_with_contention(self):
        sim = Simulation()
        nn = NameNodeModel(sim, lookup_time=0.5)

        def client(sim, nn):
            yield from nn.lookup()

        def body(sim, nn):
            yield AllOf([sim.process(client(sim, nn)) for _ in range(10)])

        sim.run(sim.process(body(sim, nn)))
        # Waits are 0, .5, 1.0, ... 4.5 -> mean 2.25.
        assert nn.mean_wait == pytest.approx(2.25)

    def test_mean_wait_zero_when_uncontended(self):
        sim = Simulation()
        nn = NameNodeModel(sim, lookup_time=0.1)

        def body(sim, nn):
            yield from nn.lookup()
            yield from nn.lookup()

        sim.run(sim.process(body(sim, nn)))
        assert nn.mean_wait == 0.0

    def test_invalid_lookup_time(self):
        with pytest.raises(SimulationError):
            NameNodeModel(Simulation(), lookup_time=0)
