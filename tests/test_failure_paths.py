"""End-to-end failure paths: worker crashes, rebalance, scheduler removal."""

import pytest

from repro.common.config import CacheConfig, ClusterConfig, DFSConfig, SchedulerConfig
from repro.common.errors import SchedulingError
from repro.common.hashing import HashSpace
from repro.dfs.fault import rebalance
from repro.dfs.filesystem import DHTFileSystem
from repro.mapreduce.api import EclipseMR
from repro.scheduler.delay import DelayScheduler
from repro.scheduler.laf import LAFScheduler

CFG = ClusterConfig(
    num_nodes=6,
    rack_size=3,
    dfs=DFSConfig(block_size=256),
    cache=CacheConfig(capacity_per_server=64 * 1024),
    scheduler=SchedulerConfig(window_tasks=8, num_bins=64),
)


def word_map(block):
    for w in block.decode().split():
        yield w, 1


def count_reduce(word, counts):
    return sum(counts)


def pack(text: bytes) -> bytes:
    from repro.apps.workloads import pack_records

    return pack_records(text.split(), CFG.dfs.block_size)


class TestRebalanceOnJoin:
    def test_join_then_rebalance_restores_invariants(self):
        fs = DHTFileSystem([f"s{i}" for i in range(4)], DFSConfig(block_size=64), HashSpace(1 << 24))
        data = b"j" * 600
        fs.upload("f", data)
        fs.add_server("late", position=99999)
        report = rebalance(fs)
        assert report.fully_recovered
        assert fs.read("f") == data
        for desc, holders in fs.block_locations("f"):
            assert set(holders) == set(fs.ring.replica_set(desc.key, extra=2))

    def test_rebalance_noop_when_consistent(self):
        fs = DHTFileSystem([f"s{i}" for i in range(4)], DFSConfig(block_size=64), HashSpace(1 << 24))
        fs.upload("f", b"x" * 300)
        report = rebalance(fs)
        assert report.blocks_recopied == 0
        assert report.blocks_promoted == 0


class TestWorkerFailureInRuntime:
    def _cluster(self, scheduler="laf"):
        mr = EclipseMR(workers=6, scheduler=scheduler, config=CFG)
        mr.upload("t.txt", pack(b"omega " * 400))
        return mr

    def test_job_correct_after_crash(self):
        mr = self._cluster()
        before = mr.map_reduce("j1", "t.txt", word_map, count_reduce)
        victim = mr.runtime.worker_ids[0]
        report = mr.runtime.fail_worker(victim)
        assert report.fully_recovered
        after = mr.map_reduce("j2", "t.txt", word_map, count_reduce)
        assert after.output == before.output
        assert victim not in after.stats.tasks_per_server

    def test_crash_with_delay_scheduler(self):
        mr = self._cluster("delay")
        before = mr.map_reduce("j1", "t.txt", word_map, count_reduce)
        mr.runtime.fail_worker(mr.runtime.worker_ids[2])
        after = mr.map_reduce("j2", "t.txt", word_map, count_reduce)
        assert after.output == before.output

    def test_sequential_crashes(self):
        mr = self._cluster()
        expected = mr.map_reduce("j0", "t.txt", word_map, count_reduce).output
        for i in range(3):
            mr.runtime.fail_worker(mr.runtime.worker_ids[0])
            result = mr.map_reduce(f"j{i+1}", "t.txt", word_map, count_reduce)
            assert result.output == expected
        assert len(mr.runtime.worker_ids) == 3

    def test_unknown_worker_rejected(self):
        mr = self._cluster()
        with pytest.raises(SchedulingError):
            mr.runtime.fail_worker("ghost")

    def test_scheduler_never_assigns_to_dead_worker(self):
        mr = self._cluster()
        victim = mr.runtime.worker_ids[0]
        mr.runtime.fail_worker(victim)
        result = mr.map_reduce("j", "t.txt", word_map, count_reduce)
        assert victim not in result.stats.tasks_per_server
        for server, _, _ in mr.scheduler.range_table():
            assert server != victim


class TestSchedulerRemoval:
    def test_laf_recuts_over_survivors(self):
        space = HashSpace(1000)
        laf = LAFScheduler(space, ["a", "b", "c", "d"])
        laf.remove_server("b")
        assert laf.servers == ["a", "c", "d"]
        table = laf.range_table()
        assert len(table) == 3
        assert table[0][1] == 0 and table[-1][2] == 1000
        # Assignments still work and never name the removed server.
        for key in range(0, 1000, 97):
            assert laf.assign(hash_key=key).server != "b"

    def test_laf_keeps_learned_popularity(self):
        space = HashSpace(1000)
        laf = LAFScheduler(
            space, ["a", "b", "c"], SchedulerConfig(window_tasks=8, num_bins=100, alpha=1.0)
        )
        for _ in range(16):
            laf.assign(hash_key=100)  # make the low region popular
        hot_width_before = laf.partition.width_of(laf.partition.owner_of(100))
        laf.remove_server("c")
        hot_width_after = laf.partition.width_of(laf.partition.owner_of(100))
        # The hot region stays narrow relative to a uniform cut.
        assert hot_width_after < 1000 // 2

    def test_delay_uniform_recut(self):
        space = HashSpace(1000)
        d = DelayScheduler(space, ["a", "b"])
        d.remove_server("a")
        assert d.assign(hash_key=999).server == "b"

    def test_cannot_remove_last(self):
        space = HashSpace(1000)
        laf = LAFScheduler(space, ["solo"])
        with pytest.raises(SchedulingError):
            laf.remove_server("solo")

    def test_remove_unknown_rejected(self):
        space = HashSpace(1000)
        laf = LAFScheduler(space, ["a", "b"])
        with pytest.raises(SchedulingError):
            laf.remove_server("zz")
