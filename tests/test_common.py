"""Tests for units, config validation, and seeded RNG streams."""

import numpy as np
import pytest

from repro.common.config import CacheConfig, ClusterConfig, DFSConfig, SchedulerConfig
from repro.common.errors import ConfigError
from repro.common.rng import SeedSequenceFactory, derive_rng
from repro.common.units import GB, KB, MB, TB, fmt_bytes, fmt_seconds


class TestUnits:
    def test_magnitudes(self):
        assert KB == 1024
        assert MB == 1024**2
        assert GB == 1024**3
        assert TB == 1024**4

    @pytest.mark.parametrize(
        "n,expected",
        [
            (0, "0 B"),
            (512, "512 B"),
            (1536, "1.5 KB"),
            (128 * MB, "128 MB"),
            (250 * GB, "250 GB"),
            (2 * TB, "2 TB"),
            (-MB, "-1 MB"),
        ],
    )
    def test_fmt_bytes(self, n, expected):
        assert fmt_bytes(n) == expected

    @pytest.mark.parametrize(
        "t,expected",
        [
            (5e-7, "0.5 us"),
            (0.002, "2 ms"),
            (3.5, "3.5 s"),
            (600, "10 min"),
            (7200, "2 h"),
        ],
    )
    def test_fmt_seconds(self, t, expected):
        assert fmt_seconds(t) == expected

    def test_fmt_seconds_negative(self):
        assert fmt_seconds(-3.0) == "-3 s"


class TestConfigs:
    def test_paper_defaults(self):
        cfg = ClusterConfig()
        assert cfg.num_nodes == 40
        assert cfg.total_map_slots == 320
        assert cfg.dfs.block_size == 128 * MB
        assert cfg.scheduler.alpha == 0.001
        assert cfg.scheduler.delay_wait == 5.0

    def test_rack_of(self):
        cfg = ClusterConfig()
        assert cfg.rack_of(0) == 0
        assert cfg.rack_of(19) == 0
        assert cfg.rack_of(20) == 1
        with pytest.raises(ConfigError):
            cfg.rack_of(40)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 0},
            {"map_slots_per_node": 0},
            {"rack_size": 0},
            {"disk_bandwidth": 0},
            {"network_latency": -1},
        ],
    )
    def test_cluster_validation(self, kwargs):
        with pytest.raises(ConfigError):
            ClusterConfig(**kwargs)

    def test_dfs_validation(self):
        with pytest.raises(ConfigError):
            DFSConfig(block_size=0)
        with pytest.raises(ConfigError):
            DFSConfig(replication=3)
        assert DFSConfig(replication=0).replication == 0

    def test_cache_validation(self):
        with pytest.raises(ConfigError):
            CacheConfig(capacity_per_server=-1)
        with pytest.raises(ConfigError):
            CacheConfig(icache_fraction=1.5)
        with pytest.raises(ConfigError):
            CacheConfig(default_ttl=0)
        assert CacheConfig(default_ttl=None).default_ttl is None

    def test_scheduler_validation(self):
        with pytest.raises(ConfigError):
            SchedulerConfig(alpha=-0.1)
        with pytest.raises(ConfigError):
            SchedulerConfig(alpha=1.1)
        with pytest.raises(ConfigError):
            SchedulerConfig(window_tasks=0)
        with pytest.raises(ConfigError):
            SchedulerConfig(kde_bandwidth=0)
        with pytest.raises(ConfigError):
            SchedulerConfig(delay_wait=-1)


class TestRng:
    def test_derive_is_deterministic(self):
        a = derive_rng(7, "workload", 3).random(5)
        b = derive_rng(7, "workload", 3).random(5)
        assert np.array_equal(a, b)

    def test_paths_independent(self):
        a = derive_rng(7, "workload", 3).random(5)
        b = derive_rng(7, "workload", 4).random(5)
        assert not np.array_equal(a, b)

    def test_string_paths_stable_across_factories(self):
        f1 = SeedSequenceFactory(42)
        f2 = SeedSequenceFactory(42)
        assert np.array_equal(f1.named("x").random(3), f2.named("x").random(3))

    def test_fresh_streams_differ(self):
        f = SeedSequenceFactory(42)
        assert not np.array_equal(f.fresh().random(3), f.fresh().random(3))

    def test_bool_and_int_paths(self):
        assert np.array_equal(
            derive_rng(1, True, 2).random(2), derive_rng(1, True, 2).random(2)
        )
        assert not np.array_equal(
            derive_rng(1, True).random(2), derive_rng(1, False).random(2)
        )
