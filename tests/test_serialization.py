"""Tests for configuration manifests (serialization round-trips)."""

import json

import pytest

from repro.common.config import (
    CacheConfig,
    ClusterConfig,
    DFSConfig,
    NetConfig,
    SchedulerConfig,
)
from repro.common.errors import ConfigError
from repro.common.serialization import config_from_dict, config_to_dict, diff_configs
from repro.common.units import GB, MB


def custom_config():
    return ClusterConfig(
        num_nodes=12,
        rack_size=6,
        map_slots_per_node=4,
        dfs=DFSConfig(block_size=64 * MB, replication=1),
        cache=CacheConfig(capacity_per_server=2 * GB, icache_fraction=0.75),
        scheduler=SchedulerConfig(alpha=0.05, window_tasks=32),
        net=NetConfig(call_timeout=12.0, retry_attempts=5, heartbeat_interval=0.5),
    )


class TestRoundTrip:
    def test_default_round_trips(self):
        cfg = ClusterConfig()
        assert config_from_dict(config_to_dict(cfg)) == cfg

    def test_custom_round_trips(self):
        cfg = custom_config()
        assert config_from_dict(config_to_dict(cfg)) == cfg

    def test_json_round_trips(self):
        cfg = custom_config()
        blob = json.dumps(config_to_dict(cfg))
        assert config_from_dict(json.loads(blob)) == cfg

    def test_schema_stamp(self):
        assert config_to_dict(ClusterConfig())["__schema__"] == "repro.ClusterConfig/1"

    def test_wrong_type_rejected(self):
        with pytest.raises(ConfigError):
            config_to_dict("not a config")  # type: ignore[arg-type]

    def test_net_section_round_trips(self):
        cfg = ClusterConfig(net=NetConfig(retry_base_delay=0.2, retry_max_delay=9.0))
        data = config_to_dict(cfg)
        assert data["net"]["retry_base_delay"] == 0.2
        assert config_from_dict(data) == cfg

    def test_manifest_without_net_section_still_loads(self):
        # Manifests written before the cluster plane existed have no "net"
        # key; they must keep loading (with defaults) under the same schema.
        data = config_to_dict(custom_config())
        del data["net"]
        cfg = config_from_dict(data)
        assert cfg.net == NetConfig()
        assert cfg.dfs.block_size == 64 * MB


class TestValidation:
    def test_unknown_key_rejected(self):
        data = config_to_dict(ClusterConfig())
        data["bogus"] = 1
        with pytest.raises(ConfigError, match="bogus"):
            config_from_dict(data)

    def test_unknown_nested_key_rejected(self):
        data = config_to_dict(ClusterConfig())
        data["dfs"]["bogus"] = 1
        with pytest.raises(ConfigError, match="bogus"):
            config_from_dict(data)

    def test_bad_schema_rejected(self):
        data = config_to_dict(ClusterConfig())
        data["__schema__"] = "other/9"
        with pytest.raises(ConfigError, match="schema"):
            config_from_dict(data)

    def test_invalid_values_still_validated(self):
        data = config_to_dict(ClusterConfig())
        data["num_nodes"] = 0
        with pytest.raises(ConfigError):
            config_from_dict(data)

    def test_nested_not_mapping_rejected(self):
        data = config_to_dict(ClusterConfig())
        data["cache"] = 5
        with pytest.raises(ConfigError):
            config_from_dict(data)


class TestDiff:
    def test_no_diff(self):
        assert diff_configs(ClusterConfig(), ClusterConfig()) == {}

    def test_flat_and_nested_diffs(self):
        a = ClusterConfig()
        b = custom_config()
        d = diff_configs(a, b)
        assert d["num_nodes"] == (40, 12)
        assert d["dfs.block_size"] == (128 * MB, 64 * MB)
        assert d["scheduler.alpha"] == (0.001, 0.05)
        assert "disk_bandwidth" not in d
