"""Integration tests for the multi-process cluster plane.

These stand up real worker processes talking TCP on localhost, so they
are the slowest tests in the suite; the datasets are kept small.  The
core claims:

* ``ClusterRuntime.run(job)`` equals ``EclipseMRRuntime.run(job)`` --
  outputs bit-equal, and the LAF scheduler makes the *same* assignment
  sequence (``tasks_per_server`` equal) because assignments are drawn
  sequentially at zero load in both planes;
* killing a worker mid-job is detected and the job completes on the
  survivors via replica failover plus task re-execution.
"""

import time

import numpy as np
import pytest

from repro.apps.kmeans import kmeans_job
from repro.apps.wordcount import wordcount_job
from repro.apps.workloads import pack_records, points, text_corpus
from repro.cluster import ClusterRuntime, LivenessTracker
from repro.cluster.coordinator import Coordinator
from repro.cluster.messages import WorkerAddress
from repro.common.config import ClusterConfig, DFSConfig, NetConfig
from repro.common.errors import ClusterError, RpcConnectionError, RpcRemoteError
from repro.net.retry import RetryPolicy
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runtime import EclipseMRRuntime

CFG = ClusterConfig(dfs=DFSConfig(block_size=2048))


def corpus():
    return pack_records(text_corpus(99, num_words=3000, vocab_size=60),
                        CFG.dfs.block_size)


@pytest.fixture(scope="module")
def cluster():
    """One 4-worker cluster shared by the happy-path tests (startup is
    the expensive part; jobs use distinct app ids and input files)."""
    with ClusterRuntime(4, CFG) as rt:
        yield rt


class TestSequentialEquivalence:
    def test_wordcount_matches_sequential_runtime(self, cluster):
        data = corpus()
        seq = EclipseMRRuntime(4, config=CFG)
        seq.upload("wc.txt", data)
        ref = seq.run(wordcount_job("wc.txt", app_id="wc-eq"))

        cluster.upload("wc.txt", data)
        res = cluster.run(wordcount_job("wc.txt", app_id="wc-eq"))

        assert res.output == ref.output
        assert res.stats.map_tasks == ref.stats.map_tasks
        assert res.stats.reduce_tasks == ref.stats.reduce_tasks
        assert res.stats.tasks_per_server == ref.stats.tasks_per_server

    def test_kmeans_matches_sequential_runtime(self, cluster):
        recs, _ = points(77, num_points=400, dim=2, num_clusters=3)
        data = pack_records(recs, CFG.dfs.block_size)
        seq = EclipseMRRuntime(4, config=CFG)
        seq.upload("pts", data)
        init = np.array([[0.2, 0.2], [0.5, 0.5], [0.8, 0.8]])
        ref = seq.run(kmeans_job("pts", init, 0, app_id="km-eq"))

        cluster.upload("pts", data)
        res = cluster.run(kmeans_job("pts", init, 0, app_id="km-eq"))

        assert set(res.output) == set(ref.output)
        for k in ref.output:
            # Same pairs, but float summation order may differ per spill.
            assert np.allclose(res.output[k], ref.output[k])
        assert res.stats.tasks_per_server == ref.stats.tasks_per_server

    def test_map_tasks_run_on_distinct_processes(self, cluster):
        cluster.upload("spread.txt", corpus())
        cluster.run(wordcount_job("spread.txt", app_id="wc-spread"))
        stats = cluster.worker_stats()
        ran = [w for w, s in stats.items() if s.get("worker.maps_run", 0) > 0]
        assert len(ran) >= 2  # true process parallelism, not one busy worker

class TestIntermediateReplay:
    """Cluster-plane oCache replay: a second ``reuse_intermediates`` job
    repopulates the reduce side from cached/persisted spills, skipping
    every map, with the *original* run's byte accounting."""

    def test_second_identical_run_replays_every_map(self, cluster):
        cluster.upload("reuse.txt", corpus())

        def job():
            return wordcount_job("reuse.txt", app_id="wc-replay",
                                 cache_intermediates=True,
                                 reuse_intermediates=True)

        first = cluster.run(job())
        blocks = first.stats.map_tasks
        assert blocks > 1
        assert first.stats.maps_skipped_by_reuse == 0

        second = cluster.run(job())
        assert second.output == first.output
        assert second.stats.maps_skipped_by_reuse == blocks
        assert second.stats.map_tasks == 0
        # Replay reports the original shuffle, not zeros (regression:
        # replayed jobs used to come back with spills=0/bytes_shuffled=0).
        assert second.stats.spills == first.stats.spills > 0
        assert second.stats.bytes_shuffled == first.stats.bytes_shuffled > 0
        # Everything was still warm in the destination workers' oCaches.
        assert second.stats.ocache_hits == second.stats.spills
        assert second.stats.ocache_misses == 0
        assert second.stats.tasks_per_server == first.stats.tasks_per_server
        assert cluster.metrics.counter("cluster.maps_replayed").value >= blocks

    def test_cleanup_broadcast_failure_never_restarts_the_job(self, cluster):
        """A worker dying under the end-of-job ``discard_job`` broadcast
        must not re-execute a *completed* job (regression: the cleanup
        call sat inside the failover retry loop)."""
        from repro.common.errors import WorkerLost

        cluster.upload("clean.txt", corpus())
        real = cluster._broadcast
        discards = []

        def flaky(method, args):
            if method == "discard_job":
                discards.append(args["app_id"])
                if len(discards) == 2:  # 1st: attempt start; 2nd: cleanup
                    raise WorkerLost("worker-1", "injected: died under cleanup")
            return real(method, args)

        failovers = cluster.metrics.counter("cluster.failovers").value
        cluster._broadcast = flaky
        try:
            res = cluster.run(wordcount_job("clean.txt", app_id="wc-clean"))
        finally:
            cluster._broadcast = real

        assert len(discards) == 2, "cleanup broadcast never happened"
        assert sum(res.output.values()) == 3000  # result still delivered
        assert res.stats.task_retries == 0  # and nothing re-executed
        assert cluster.metrics.counter("cluster.failovers").value == failovers
        assert cluster.metrics.counter("cluster.cleanup_failures").value >= 1

    def test_empty_post_combiner_spills_never_ship_or_persist(self, cluster):
        """A combiner that drops every pair must leave nothing on the wire,
        in oCache, or in the persisted spill store (regression: empty
        spills were delivered and persisted under hash key 0)."""
        cluster.upload("dropall.txt", corpus())

        def drop_map(block):
            for w in bytes(block).decode().split():
                yield w, 1

        def drop_all(key, values):
            return []

        def drop_reduce(key, values):
            return sum(values)

        def job(app_id, reuse=False):
            return MapReduceJob(app_id=app_id, input_file="dropall.txt",
                                map_fn=drop_map, reduce_fn=drop_reduce,
                                combiner=drop_all, cache_intermediates=True,
                                reuse_intermediates=reuse)

        before = cluster.worker_stats()
        res = cluster.run(job("wc-dropall"))
        after = cluster.worker_stats()

        assert res.output == {}
        assert res.stats.spills == 0
        assert res.stats.bytes_shuffled == 0
        assert res.stats.map_tasks > 1

        def total(stats, name):
            return sum(s.get(name, 0) for s in stats.values())

        skipped = (total(after, "worker.spills_skipped_empty")
                   - total(before, "worker.spills_skipped_empty"))
        assert skipped >= res.stats.map_tasks
        assert total(after, "worker.spill_objects_stored") == \
            total(before, "worker.spill_objects_stored")  # nothing persisted

        # The (empty) completion markers still replay: the rerun skips
        # every map and delivers the same empty output.
        second = cluster.run(job("wc-dropall", reuse=True))
        assert second.output == {}
        assert second.stats.maps_skipped_by_reuse == res.stats.map_tasks
        assert second.stats.map_tasks == 0


class TestFailover:
    def test_worker_killed_mid_job_completes_via_failover(self):
        data = corpus()
        seq = EclipseMRRuntime(4, config=CFG)
        seq.upload("ft.txt", data)
        ref = seq.run(wordcount_job("ft.txt", app_id="wc-ft"))

        with ClusterRuntime(4, CFG) as rt:
            rt.upload("ft.txt", data)
            killed = []

            def chaos(done_maps):
                if done_maps == 2 and not killed:
                    victim = rt.worker_ids[1]
                    rt.kill_worker(victim)
                    killed.append(victim)

            rt.on_map_complete = chaos
            res = rt.run(wordcount_job("ft.txt", app_id="wc-ft"))

            assert killed, "chaos hook never fired"
            assert res.output == ref.output  # correct despite the kill
            assert killed[0] not in rt.worker_ids
            assert len(rt.worker_ids) == 3
            assert rt.metrics.counter("cluster.failovers").value == 1
            assert rt.metrics.counter("cluster.tasks_reexecuted").value >= 1
            assert res.stats.task_retries >= 1
            # The dead worker's blocks were re-replicated from survivors.
            assert rt.metrics.counter("failover.blocks_rereplicated").value >= 1

    def test_worker_killed_mid_replay_fails_over(self):
        """SIGKILL a worker after the first oCache replay: the attempt is
        aborted, the cluster fails over, and the retried attempt still
        produces the correct result (replaying what it can from the
        survivors, re-mapping the rest)."""
        data = corpus()
        seq = EclipseMRRuntime(4, config=CFG)
        seq.upload("rp.txt", data)
        ref = seq.run(wordcount_job("rp.txt", app_id="wc-rp",
                                    cache_intermediates=True))

        with ClusterRuntime(4, CFG) as rt:
            rt.upload("rp.txt", data)
            first = rt.run(wordcount_job("rp.txt", app_id="wc-rp",
                                         cache_intermediates=True))
            assert first.output == ref.output
            blocks = first.stats.map_tasks
            killed = []

            def chaos(replays_done):
                if replays_done == 1 and not killed:
                    victim = rt.worker_ids[-1]
                    rt.kill_worker(victim)
                    killed.append(victim)

            rt.on_replay_complete = chaos
            second = rt.run(wordcount_job("rp.txt", app_id="wc-rp",
                                          cache_intermediates=True,
                                          reuse_intermediates=True))

            assert killed, "chaos hook never fired"
            assert second.output == ref.output  # correct despite the kill
            assert killed[0] not in rt.worker_ids
            # On the successful attempt every block either replayed from
            # the survivors or fell back to an honest re-map -- no block
            # was lost and none ran twice.
            assert (second.stats.maps_skipped_by_reuse
                    + second.stats.map_tasks) == blocks
            assert rt.metrics.counter("cluster.failovers").value == 1

    def test_death_detected_by_heartbeats_between_jobs(self):
        net = NetConfig(heartbeat_interval=0.1, heartbeat_miss_threshold=3)
        cfg = ClusterConfig(dfs=DFSConfig(block_size=2048), net=net)
        with ClusterRuntime(3, cfg) as rt:
            rt.upload("hb.txt", corpus())
            victim = rt.worker_ids[-1]
            rt.kill_worker(victim)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if victim in rt.check_liveness():
                    break
                time.sleep(0.05)
            else:
                pytest.fail("heartbeat silence was never detected")
            # The next job notices at dispatch time and fails over.
            res = rt.run(wordcount_job("hb.txt", app_id="wc-hb"))
            assert victim not in rt.worker_ids
            assert sum(res.output.values()) == 3000

    def test_losing_all_workers_raises(self):
        """Surgical failover absorbs one death per spare worker; killing a
        worker after every map completion exhausts the budget and the job
        must give up instead of looping."""
        with ClusterRuntime(2, CFG) as rt:
            rt.upload("die.txt", corpus())

            def chaos(done_maps):
                if rt.worker_ids:
                    rt.kill_worker(rt.worker_ids[0])

            rt.on_map_complete = chaos
            with pytest.raises(ClusterError):
                rt.run(wordcount_job("die.txt", app_id="wc-die"))


class TestLivenessTracker:
    def test_dead_after_missed_threshold(self):
        now = [0.0]
        tracker = LivenessTracker(interval=1.0, miss_threshold=4,
                                  clock=lambda: now[0])
        tracker.register("w1")
        tracker.register("w2")
        now[0] = 3.9
        tracker.beat("w2")
        assert tracker.dead_workers() == []
        now[0] = 4.1  # w1 silent for > 4 intervals; w2 beat at 3.9
        assert tracker.dead_workers() == ["w1"]
        assert not tracker.alive("w1")
        assert tracker.alive("w2")

    def test_beat_resets_the_clock(self):
        now = [0.0]
        tracker = LivenessTracker(interval=0.5, miss_threshold=2,
                                  clock=lambda: now[0])
        tracker.register("w")
        for t in (0.9, 1.8, 2.7):
            now[0] = t
            tracker.beat("w")
            assert tracker.dead_workers() == []
        assert tracker.beats_of("w") == 3

    def test_removed_worker_is_not_tracked(self):
        now = [0.0]
        tracker = LivenessTracker(interval=1.0, miss_threshold=1,
                                  clock=lambda: now[0])
        tracker.register("w")
        tracker.remove("w")
        now[0] = 100.0
        assert tracker.dead_workers() == []
        tracker.beat("w")  # late heartbeat from a removed worker: ignored
        assert tracker.tracked() == []

    def test_age(self):
        now = [10.0]
        tracker = LivenessTracker(interval=1.0, miss_threshold=2,
                                  clock=lambda: now[0])
        tracker.register("w")
        now[0] = 12.5
        assert tracker.age("w") == pytest.approx(2.5)
        with pytest.raises(ClusterError):
            tracker.age("unknown")

    def test_validation(self):
        with pytest.raises(ClusterError):
            LivenessTracker(interval=0.0, miss_threshold=2)
        with pytest.raises(ClusterError):
            LivenessTracker(interval=1.0, miss_threshold=0)


class TestHeartbeatGauge:
    def test_max_age_gauge_reports_the_oldest_worker(self):
        """``heartbeat.max_age_s`` must be the *max* across workers, not
        whichever worker the loop visited last (the regression: the gauge
        was set per-iteration, so the freshest worker won)."""
        coord = Coordinator(["w1", "w2", "w3"], CFG)
        try:
            now = [0.0]
            coord.liveness = LivenessTracker(interval=1.0, miss_threshold=10,
                                             clock=lambda: now[0])
            coord.liveness.register("w1")  # silent since t=0
            now[0] = 2.0
            coord.liveness.register("w2")
            now[0] = 3.0
            coord.liveness.register("w3")  # freshest, and visited last
            assert coord.check_heartbeats() == []
            assert coord.metrics.gauge("heartbeat.max_age_s").value == \
                pytest.approx(3.0)
            assert coord.metrics.counter("heartbeat.missed_deadlines").value == 0

            now[0] = 30.0  # everyone blew the 10-interval deadline
            assert coord.check_heartbeats() == ["w1", "w2", "w3"]
            assert coord.metrics.counter("heartbeat.missed_deadlines").value == 3
            assert coord.metrics.gauge("heartbeat.max_age_s").value == \
                pytest.approx(30.0)
        finally:
            coord.shutdown()


class _ScriptedPool:
    """A stand-in for the coordinator's ConnectionPool: each address
    consumes a scripted list of responses (bytes to return, exceptions to
    raise), and every call is recorded in order."""

    def __init__(self, scripts, attempts=2):
        self.scripts = {addr: list(steps) for addr, steps in scripts.items()}
        self.calls = []
        self.policy = RetryPolicy(attempts=attempts, base_delay=0.01,
                                  jitter=0.0, sleep=lambda _s: None)

    def call(self, addr, method, args=None, **kwargs):
        self.calls.append(addr)
        step = self.scripts[addr].pop(0)
        if isinstance(step, Exception):
            raise step
        return step


class TestFetchFromAny:
    """``Coordinator._fetch_from_any``: recorded holders first (least
    scheduler load wins), then every other survivor, retried as whole
    sweeps under the pool's policy."""

    def _coordinator(self, scripts_by_wid, attempts=2):
        coord = Coordinator(["w1", "w2", "w3"], CFG)
        addr_of = {}
        for i, wid in enumerate(coord.worker_ids):
            address = WorkerAddress(wid, "203.0.113.9", 9000 + i)
            coord.addresses[wid] = address
            addr_of[wid] = address.addr
        pool = _ScriptedPool(
            {addr_of[wid]: steps for wid, steps in scripts_by_wid.items()},
            attempts=attempts,
        )
        real_pool, coord.pool = coord.pool, pool
        wid_of = {addr: wid for wid, addr in addr_of.items()}
        return coord, pool, wid_of, real_pool

    def test_holders_first_ordered_by_load_then_other_survivors(self):
        coord, pool, wid_of, real = self._coordinator({
            "w1": [RpcConnectionError("down")],
            "w2": [RpcRemoteError("BlockNotFound", "no copy here")],
            "w3": [b"DATA"],
        })
        try:
            coord.scheduler.notify_start("w1")  # w1 busier than w2
            data = coord._fetch_from_any(("f", 0), ["w1", "w2"])
            assert data == b"DATA"
            # Recorded holders first, least-loaded first; the non-holder
            # w3 is only the long shot at the end.
            assert [wid_of[a] for a in pool.calls] == ["w2", "w1", "w3"]
        finally:
            coord.pool = real
            coord.shutdown()

    def test_transport_failures_retry_the_whole_sweep(self):
        coord, pool, wid_of, real = self._coordinator({
            "w1": [RpcConnectionError("down"), RpcConnectionError("down")],
            "w2": [RpcConnectionError("down"), RpcConnectionError("down")],
            "w3": [RpcConnectionError("down"), b"DATA"],
        })
        try:
            data = coord._fetch_from_any(("f", 0), ["w1", "w2"])
            assert data == b"DATA"
            assert [wid_of[a] for a in pool.calls] == \
                ["w1", "w2", "w3"] * 2  # two full sweeps
        finally:
            coord.pool = real
            coord.shutdown()

    def test_block_not_found_everywhere_fails_without_retry(self):
        coord, pool, wid_of, real = self._coordinator({
            "w1": [RpcRemoteError("BlockNotFound", "gone")],
            "w2": [RpcRemoteError("BlockNotFound", "gone")],
            "w3": [RpcRemoteError("BlockNotFound", "gone")],
        })
        try:
            with pytest.raises(ClusterError, match="from any survivor"):
                coord._fetch_from_any(("f", 0), ["w1", "w2"])
            assert len(pool.calls) == 3  # retrying a missing block is useless
        finally:
            coord.pool = real
            coord.shutdown()

    def test_unexpected_remote_error_is_fatal_immediately(self):
        coord, pool, wid_of, real = self._coordinator({
            "w1": [RpcRemoteError("ValueError", "corrupt shard")],
            "w2": [b"NEVER"],
            "w3": [b"NEVER"],
        })
        try:
            with pytest.raises(ClusterError, match="failed serving block"):
                coord._fetch_from_any(("f", 0), ["w1", "w2"])
            assert [wid_of[a] for a in pool.calls] == ["w1"]
        finally:
            coord.pool = real
            coord.shutdown()


class TestCaching:
    def test_second_job_hits_icache(self):
        cfg = ClusterConfig(dfs=DFSConfig(block_size=2048))
        with ClusterRuntime(4, cfg) as rt:
            rt.upload("cache.txt", corpus())
            first = rt.run(wordcount_job("cache.txt", app_id="wc-c1"))
            second = rt.run(wordcount_job("cache.txt", app_id="wc-c2"))
            assert first.output == second.output
            assert first.stats.icache_hits == 0
            # Same blocks, same LAF assignment, warm caches.
            assert second.stats.icache_hits == second.stats.map_tasks
