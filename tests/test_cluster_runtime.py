"""Integration tests for the multi-process cluster plane.

These stand up real worker processes talking TCP on localhost, so they
are the slowest tests in the suite; the datasets are kept small.  The
core claims:

* ``ClusterRuntime.run(job)`` equals ``EclipseMRRuntime.run(job)`` --
  outputs bit-equal, and the LAF scheduler makes the *same* assignment
  sequence (``tasks_per_server`` equal) because assignments are drawn
  sequentially at zero load in both planes;
* killing a worker mid-job is detected and the job completes on the
  survivors via replica failover plus task re-execution.
"""

import time

import numpy as np
import pytest

from repro.apps.kmeans import kmeans_job
from repro.apps.wordcount import wordcount_job
from repro.apps.workloads import pack_records, points, text_corpus
from repro.cluster import ClusterRuntime, LivenessTracker
from repro.common.config import ClusterConfig, DFSConfig, NetConfig
from repro.common.errors import ClusterError
from repro.mapreduce.runtime import EclipseMRRuntime

CFG = ClusterConfig(dfs=DFSConfig(block_size=2048))


def corpus():
    return pack_records(text_corpus(99, num_words=3000, vocab_size=60),
                        CFG.dfs.block_size)


@pytest.fixture(scope="module")
def cluster():
    """One 4-worker cluster shared by the happy-path tests (startup is
    the expensive part; jobs use distinct app ids and input files)."""
    with ClusterRuntime(4, CFG) as rt:
        yield rt


class TestSequentialEquivalence:
    def test_wordcount_matches_sequential_runtime(self, cluster):
        data = corpus()
        seq = EclipseMRRuntime(4, config=CFG)
        seq.upload("wc.txt", data)
        ref = seq.run(wordcount_job("wc.txt", app_id="wc-eq"))

        cluster.upload("wc.txt", data)
        res = cluster.run(wordcount_job("wc.txt", app_id="wc-eq"))

        assert res.output == ref.output
        assert res.stats.map_tasks == ref.stats.map_tasks
        assert res.stats.reduce_tasks == ref.stats.reduce_tasks
        assert res.stats.tasks_per_server == ref.stats.tasks_per_server

    def test_kmeans_matches_sequential_runtime(self, cluster):
        recs, _ = points(77, num_points=400, dim=2, num_clusters=3)
        data = pack_records(recs, CFG.dfs.block_size)
        seq = EclipseMRRuntime(4, config=CFG)
        seq.upload("pts", data)
        init = np.array([[0.2, 0.2], [0.5, 0.5], [0.8, 0.8]])
        ref = seq.run(kmeans_job("pts", init, 0, app_id="km-eq"))

        cluster.upload("pts", data)
        res = cluster.run(kmeans_job("pts", init, 0, app_id="km-eq"))

        assert set(res.output) == set(ref.output)
        for k in ref.output:
            # Same pairs, but float summation order may differ per spill.
            assert np.allclose(res.output[k], ref.output[k])
        assert res.stats.tasks_per_server == ref.stats.tasks_per_server

    def test_map_tasks_run_on_distinct_processes(self, cluster):
        cluster.upload("spread.txt", corpus())
        cluster.run(wordcount_job("spread.txt", app_id="wc-spread"))
        stats = cluster.worker_stats()
        ran = [w for w, s in stats.items() if s.get("worker.maps_run", 0) > 0]
        assert len(ran) >= 2  # true process parallelism, not one busy worker

    def test_reuse_intermediates_rejected(self, cluster):
        with pytest.raises(ClusterError, match="reuse_intermediates"):
            cluster.run(wordcount_job("wc.txt", app_id="wc-reuse",
                                      reuse_intermediates=True))


class TestFailover:
    def test_worker_killed_mid_job_completes_via_failover(self):
        data = corpus()
        seq = EclipseMRRuntime(4, config=CFG)
        seq.upload("ft.txt", data)
        ref = seq.run(wordcount_job("ft.txt", app_id="wc-ft"))

        with ClusterRuntime(4, CFG) as rt:
            rt.upload("ft.txt", data)
            killed = []

            def chaos(done_maps):
                if done_maps == 2 and not killed:
                    victim = rt.worker_ids[1]
                    rt.kill_worker(victim)
                    killed.append(victim)

            rt.on_map_complete = chaos
            res = rt.run(wordcount_job("ft.txt", app_id="wc-ft"))

            assert killed, "chaos hook never fired"
            assert res.output == ref.output  # correct despite the kill
            assert killed[0] not in rt.worker_ids
            assert len(rt.worker_ids) == 3
            assert rt.metrics.counter("cluster.failovers").value == 1
            assert rt.metrics.counter("cluster.tasks_reexecuted").value >= 1
            assert res.stats.task_retries >= 1
            # The dead worker's blocks were re-replicated from survivors.
            assert rt.metrics.counter("failover.blocks_rereplicated").value >= 1

    def test_death_detected_by_heartbeats_between_jobs(self):
        net = NetConfig(heartbeat_interval=0.1, heartbeat_miss_threshold=3)
        cfg = ClusterConfig(dfs=DFSConfig(block_size=2048), net=net)
        with ClusterRuntime(3, cfg) as rt:
            rt.upload("hb.txt", corpus())
            victim = rt.worker_ids[-1]
            rt.kill_worker(victim)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if victim in rt.check_liveness():
                    break
                time.sleep(0.05)
            else:
                pytest.fail("heartbeat silence was never detected")
            # The next job notices at dispatch time and fails over.
            res = rt.run(wordcount_job("hb.txt", app_id="wc-hb"))
            assert victim not in rt.worker_ids
            assert sum(res.output.values()) == 3000

    def test_losing_all_workers_raises(self):
        with ClusterRuntime(2, CFG) as rt:
            rt.upload("die.txt", corpus())

            def chaos(done_maps):
                if done_maps == 1 and rt.worker_ids:
                    rt.kill_worker(rt.worker_ids[0])

            rt.on_map_complete = chaos
            with pytest.raises(ClusterError):
                rt.run(wordcount_job("die.txt", app_id="wc-die"))


class TestLivenessTracker:
    def test_dead_after_missed_threshold(self):
        now = [0.0]
        tracker = LivenessTracker(interval=1.0, miss_threshold=4,
                                  clock=lambda: now[0])
        tracker.register("w1")
        tracker.register("w2")
        now[0] = 3.9
        tracker.beat("w2")
        assert tracker.dead_workers() == []
        now[0] = 4.1  # w1 silent for > 4 intervals; w2 beat at 3.9
        assert tracker.dead_workers() == ["w1"]
        assert not tracker.alive("w1")
        assert tracker.alive("w2")

    def test_beat_resets_the_clock(self):
        now = [0.0]
        tracker = LivenessTracker(interval=0.5, miss_threshold=2,
                                  clock=lambda: now[0])
        tracker.register("w")
        for t in (0.9, 1.8, 2.7):
            now[0] = t
            tracker.beat("w")
            assert tracker.dead_workers() == []
        assert tracker.beats_of("w") == 3

    def test_removed_worker_is_not_tracked(self):
        now = [0.0]
        tracker = LivenessTracker(interval=1.0, miss_threshold=1,
                                  clock=lambda: now[0])
        tracker.register("w")
        tracker.remove("w")
        now[0] = 100.0
        assert tracker.dead_workers() == []
        tracker.beat("w")  # late heartbeat from a removed worker: ignored
        assert tracker.tracked() == []

    def test_age(self):
        now = [10.0]
        tracker = LivenessTracker(interval=1.0, miss_threshold=2,
                                  clock=lambda: now[0])
        tracker.register("w")
        now[0] = 12.5
        assert tracker.age("w") == pytest.approx(2.5)
        with pytest.raises(ClusterError):
            tracker.age("unknown")

    def test_validation(self):
        with pytest.raises(ClusterError):
            LivenessTracker(interval=0.0, miss_threshold=2)
        with pytest.raises(ClusterError):
            LivenessTracker(interval=1.0, miss_threshold=0)


class TestCaching:
    def test_second_job_hits_icache(self):
        cfg = ClusterConfig(dfs=DFSConfig(block_size=2048))
        with ClusterRuntime(4, cfg) as rt:
            rt.upload("cache.txt", corpus())
            first = rt.run(wordcount_job("cache.txt", app_id="wc-c1"))
            second = rt.run(wordcount_job("cache.txt", app_id="wc-c2"))
            assert first.output == second.output
            assert first.stats.icache_hits == 0
            # Same blocks, same LAF assignment, warm caches.
            assert second.stats.icache_hits == second.stats.map_tasks
