"""Tests for LRU, worker caches (iCache/oCache) and the distributed view."""

import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import CacheConfig
from repro.common.errors import CacheMiss, SchedulingError
from repro.common.hashing import HashSpace
from repro.cache.distributed import DistributedCache
from repro.cache.eviction import make_policy
from repro.cache.lru import LRUCache
from repro.cache.worker import WorkerCache
from repro.scheduler.partition import SpacePartition


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestLRUCache:
    def test_put_get(self):
        c = LRUCache(100)
        c.put("a", 1, size=10)
        assert c.get("a") == 1
        assert c.hits == 1

    def test_miss_raises(self):
        c = LRUCache(100)
        with pytest.raises(CacheMiss):
            c.get("ghost")
        assert c.misses == 1

    def test_lookup_tolerant(self):
        c = LRUCache(100)
        assert c.lookup("x") == (False, None)
        c.put("x", 5, size=1)
        assert c.lookup("x") == (True, 5)

    def test_lru_eviction_order(self):
        c = LRUCache(30)
        c.put("a", 1, size=10)
        c.put("b", 2, size=10)
        c.put("c", 3, size=10)
        c.get("a")  # refresh a
        c.put("d", 4, size=10)  # evicts b
        assert "a" in c and "c" in c and "d" in c and "b" not in c
        assert c.evictions == 1

    def test_oversized_entry_rejected(self):
        c = LRUCache(10)
        assert not c.put("big", 1, size=11)
        assert "big" not in c

    def test_replace_updates_size(self):
        c = LRUCache(30)
        c.put("a", 1, size=10)
        c.put("a", 2, size=20)
        assert c.used == 20
        assert c.get("a") == 2

    def test_zero_capacity(self):
        c = LRUCache(0)
        assert not c.put("a", 1, size=1)
        assert c.put("b", None, size=0)

    def test_ttl_expiry(self):
        clock = FakeClock()
        c = LRUCache(100, clock)
        c.put("a", 1, size=1, ttl=5.0)
        assert c.get("a") == 1
        clock.t = 5.0
        with pytest.raises(CacheMiss):
            c.get("a")
        assert c.expirations == 1

    def test_purge_expired(self):
        clock = FakeClock()
        c = LRUCache(100, clock)
        c.put("a", 1, size=1, ttl=1.0)
        c.put("b", 2, size=1, ttl=10.0)
        c.put("c", 3, size=1)
        clock.t = 2.0
        assert c.purge_expired() == 1
        assert "b" in c and "c" in c

    def test_pop(self):
        c = LRUCache(100)
        c.put("a", 7, size=4)
        entry = c.pop("a")
        assert entry.value == 7
        assert c.used == 0
        assert c.pop("a") is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_entries_lru_order(self):
        c = LRUCache(100)
        c.put("a", 1, size=1)
        c.put("b", 2, size=1)
        c.get("a")
        assert [e.key for e in c.entries()] == ["b", "a"]


@given(
    ops=st.lists(
        st.tuples(st.sampled_from("pg"), st.integers(0, 9), st.integers(1, 20)),
        max_size=60,
    ),
    capacity=st.integers(1, 50),
)
@settings(max_examples=60)
def test_lru_invariants(ops, capacity):
    """Used bytes never exceed capacity and always equal the entry sum."""
    c = LRUCache(capacity)
    for op, key, size in ops:
        if op == "p":
            c.put(key, key, size=size)
        else:
            c.lookup(key)
        assert c.used <= c.capacity
        assert c.used == sum(e.size for e in c.entries())


class TestWorkerCache:
    def test_partitions_split_budget(self):
        cache = WorkerCache("s0", CacheConfig(capacity_per_server=100, icache_fraction=0.3))
        assert cache.icache.capacity == 30
        assert cache.ocache.capacity == 70
        assert cache.capacity == 100

    def test_input_caching(self):
        cache = WorkerCache("s0", CacheConfig(capacity_per_server=100))
        hit, _ = cache.get_input("blk1")
        assert not hit
        cache.put_input("blk1", b"data", size=4)
        hit, value = cache.get_input("blk1")
        assert hit and value == b"data"

    def test_output_tagging(self):
        cache = WorkerCache("s0", CacheConfig(capacity_per_server=100))
        cache.put_output("app1", "iter0", [1, 2], size=8)
        hit, value = cache.get_output("app1", "iter0")
        assert hit and value == [1, 2]
        hit, _ = cache.get_output("app2", "iter0")
        assert not hit

    def test_invalidate_app(self):
        cache = WorkerCache("s0", CacheConfig(capacity_per_server=100))
        cache.put_output("app1", "a", 1, size=1)
        cache.put_output("app1", "b", 2, size=1)
        cache.put_output("app2", "a", 3, size=1)
        assert cache.invalidate_app("app1") == 2
        assert cache.get_output("app2", "a")[0]

    def test_default_ttl_applies(self):
        clock = FakeClock()
        cache = WorkerCache(
            "s0", CacheConfig(capacity_per_server=100, default_ttl=5.0), clock
        )
        cache.put_output("app", "x", 1, size=1)
        clock.t = 6.0
        assert not cache.get_output("app", "x")[0]

    def test_stats_aggregate(self):
        cache = WorkerCache("s0", CacheConfig(capacity_per_server=100))
        cache.get_input("a")       # i-miss
        cache.put_input("a", 1, 1)
        cache.get_input("a")       # i-hit
        cache.get_output("ap", "t")  # o-miss
        s = cache.stats()
        assert (s.icache_hits, s.icache_misses, s.ocache_misses) == (1, 1, 1)
        assert s.hit_ratio == pytest.approx(1 / 3)


class TestDistributedCache:
    def _dc(self, n=4, migrate=False, capacity=1000):
        space = HashSpace(1000)
        cfg = CacheConfig(capacity_per_server=capacity, migrate_misplaced=migrate)
        return DistributedCache([f"s{i}" for i in range(n)], cfg, space)

    def test_uniform_partition_by_default(self):
        dc = self._dc(4)
        assert dc.home_of(0) == "s0"
        assert dc.home_of(499) == "s1"
        assert dc.home_of(999) == "s3"

    def test_set_partition_moves_home(self):
        dc = self._dc(2)
        dc.set_partition(SpacePartition(dc.space, ["s0", "s1"], [0, 900, 1000]))
        assert dc.home_of(800) == "s0"

    def test_partition_server_mismatch_rejected(self):
        dc = self._dc(2)
        with pytest.raises(SchedulingError):
            dc.set_partition(SpacePartition(dc.space, ["s0", "sX"], [0, 500, 1000]))

    def test_misplaced_entries_counted(self):
        dc = self._dc(2)
        dc.worker("s0").put_input("blk", b"x", size=1, hash_key=700)  # home is s1
        assert dc.misplaced_entries() == {"s0": 1, "s1": 0}

    def test_migration_to_neighbor(self):
        dc = self._dc(2, migrate=True)
        dc.worker("s0").put_input("blk", b"x", size=1, hash_key=400)
        # Shift the boundary so key 400 now belongs to s1 (s0's neighbor).
        dc.set_partition(SpacePartition(dc.space, ["s0", "s1"], [0, 300, 1000]))
        assert dc.migrated_entries == 1
        hit, _ = dc.worker("s1").get_input("blk")
        assert hit
        hit, _ = dc.worker("s0").get_input("blk")
        assert not hit

    def test_migration_disabled_by_default(self):
        dc = self._dc(2, migrate=False)
        dc.worker("s0").put_input("blk", b"x", size=1, hash_key=400)
        dc.set_partition(SpacePartition(dc.space, ["s0", "s1"], [0, 300, 1000]))
        assert dc.migrated_entries == 0
        assert dc.misplaced_entries()["s0"] == 1

    def test_aggregate_stats(self):
        dc = self._dc(2)
        dc.worker("s0").get_input("a")
        dc.worker("s1").get_input("b")
        dc.worker("s1").put_input("b", 1, 1)
        dc.worker("s1").get_input("b")
        stats = dc.stats()
        assert stats.icache_hits == 1 and stats.icache_misses == 2

    def test_clear(self):
        dc = self._dc(2)
        dc.worker("s0").put_input("a", 1, 10)
        dc.clear()
        assert dc.used == 0

    def test_empty_server_list_rejected(self):
        with pytest.raises(SchedulingError):
            DistributedCache([], CacheConfig(), HashSpace(100))


class TestEvictionPolicies:
    def test_make_policy_rejects_unknown_names(self):
        from repro.common.errors import ConfigError
        with pytest.raises(ConfigError):
            make_policy("random")

    def test_cacheconfig_validates_eviction(self):
        from repro.common.errors import ConfigError
        with pytest.raises(ConfigError):
            CacheConfig(eviction="mru")

    def test_cost_policy_keeps_the_hot_entry(self):
        # LRU evicts the least-recent entry even if it is the hottest;
        # the cost-aware policy keeps the frequently hit one.
        def scan(policy):
            c = LRUCache(30, policy=make_policy(policy))
            c.put("hot", 1, size=10)
            for _ in range(5):
                c.get("hot")
            c.put("cold1", 2, size=10)
            c.put("cold2", 3, size=10)
            c.put("new", 4, size=10)  # forces one eviction
            return c
        lru = scan("lru")
        assert "hot" not in lru  # recency alone ages the hot entry out
        cost = scan("cost")
        assert "hot" in cost
        assert "cold1" not in cost
        assert cost.evictions == 1

    def test_cost_policy_ages_out_stale_entries(self):
        c = LRUCache(20, policy=make_policy("cost"))
        c.put("once-hot", 1, size=10)
        for _ in range(3):
            c.get("once-hot")  # priority ~ 4
        c.put("a", 2, size=10)
        c.put("b", 3, size=10)      # evicts a (freq 1): age floor rises
        c.put("c", 4, size=10)      # and keeps rising with each victim
        c.put("d", 5, size=10)
        c.put("e", 6, size=10)
        # After enough evictions the age floor passes the idle hot
        # entry's frozen priority, so it finally goes too.
        assert "once-hot" not in c

    def test_cost_policy_degenerates_to_lru_on_uniform_traffic(self):
        lru = LRUCache(30, policy=make_policy("lru"))
        cost = LRUCache(30, policy=make_policy("cost"))
        for c in (lru, cost):
            c.put("a", 1, size=10)
            c.put("b", 2, size=10)
            c.put("c", 3, size=10)
            c.put("d", 4, size=10)
        assert set(e.key for e in lru.entries()) == set(e.key for e in cost.entries())

    def test_explicit_cost_outweighs_size(self):
        c = LRUCache(20, policy=make_policy("cost"))
        c.put("cheap", 1, size=10)              # cost defaults to size: score 1
        c.put("dear", 2, size=10, cost=100.0)   # score 10
        c.put("new", 3, size=10)
        assert "dear" in c and "cheap" not in c

    def test_worker_cache_selects_policy_from_config(self):
        wc = WorkerCache("s0", CacheConfig(capacity_per_server=100, eviction="cost"))
        assert wc.icache.policy.name == "cost"
        # Each partition owns its own instance (aging state must not leak).
        assert wc.icache.policy is not wc.ocache.policy

    def test_stats_surface_evictions_and_expirations(self):
        clock = FakeClock()
        wc = WorkerCache("s0", CacheConfig(capacity_per_server=20, default_ttl=5.0),
                         clock=clock)
        wc.put_input("a", b"x", size=10)
        wc.put_input("b", b"y", size=10)  # icache is 10 bytes: evicts a
        wc.put_output("app", "t", b"z", size=1)
        clock.t = 10.0
        assert wc.get_output("app", "t") == (False, None)
        stats = wc.stats()
        assert stats.icache_evictions == 1
        assert stats.ocache_expirations == 1
        assert stats.evictions == 1 and stats.expirations == 1


class TestDefaultClock:
    def test_ttl_expires_in_real_time_without_an_injected_clock(self):
        # Regression: the default clock used to be `lambda: 0.0`, so
        # TTL'd oCache entries never expired unless a clock was injected.
        wc = WorkerCache("s0", CacheConfig(capacity_per_server=100))
        wc.put_output("app", "t", b"v", size=1, ttl=0.02)
        assert wc.get_output("app", "t") == (True, b"v")
        time.sleep(0.05)
        assert wc.get_output("app", "t") == (False, None)
        assert wc.ocache.expirations == 1

    def test_lru_cache_default_clock_is_monotonic(self):
        c = LRUCache(100)
        c.put("k", 1, size=1, ttl=0.02)
        assert c.get("k") == 1
        time.sleep(0.05)
        with pytest.raises(CacheMiss):
            c.get("k")
