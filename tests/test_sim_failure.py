"""Mid-job node failure in the performance plane."""

import pytest

from repro.common.config import CacheConfig, ClusterConfig, DFSConfig, SchedulerConfig
from repro.common.errors import SimulationError
from repro.common.units import GB, MB
from repro.perfmodel.engine import PerfEngine, SimJobSpec
from repro.perfmodel.framework import eclipse_framework, hadoop_framework
from repro.perfmodel.placement import dht_layout
from repro.perfmodel.profiles import APP_PROFILES


def engine_with(framework=None, nodes=6):
    config = ClusterConfig(
        num_nodes=nodes,
        rack_size=max(1, nodes // 2),
        map_slots_per_node=2,
        reduce_slots_per_node=2,
        dfs=DFSConfig(block_size=128 * MB),
        cache=CacheConfig(capacity_per_server=1 * GB, icache_fraction=1.0),
        scheduler=SchedulerConfig(window_tasks=16),
        page_cache_per_node=1 * GB,
    )
    return PerfEngine(config, framework or eclipse_framework())


def spec_for(engine, blocks=24, app="wordcount", iterations=1):
    layout = dht_layout(engine.space, engine.ring, "in", blocks, 128 * MB)
    return SimJobSpec(app=APP_PROFILES[app], tasks=layout, iterations=iterations, label="j")


class TestMidJobFailure:
    def test_job_completes_despite_failure(self):
        engine = engine_with()
        spec = spec_for(engine)
        engine.schedule_failure(node=2, at=5.0)
        timing = engine.run_job(spec)
        assert timing.makespan > 0
        assert not engine.alive(2)
        # Every task eventually ran somewhere alive.
        assert timing.map_tasks >= len(spec.tasks)

    def test_running_tasks_restart(self):
        engine = engine_with()
        spec = spec_for(engine, blocks=24)
        # Fail while the first wave (12 slots, 24 tasks) is surely running.
        engine.schedule_failure(node=0, at=2.0)
        timing = engine.run_job(spec)
        assert timing.task_restarts > 0

    def test_failure_slows_the_job(self):
        e1 = engine_with()
        base = e1.run_job(spec_for(e1))
        e2 = engine_with()
        e2.schedule_failure(node=1, at=2.0)
        failed = e2.run_job(spec_for(e2))
        assert failed.makespan >= base.makespan

    def test_no_tasks_on_dead_node_after_failure(self):
        engine = engine_with()
        spec = spec_for(engine, blocks=30)
        engine.schedule_failure(node=3, at=0.5)
        timing = engine.run_job(spec)
        # Work done on node 3 is at most what slipped in before t=0.5
        # (essentially nothing: tasks take seconds).
        assert timing.tasks_per_server[3] <= timing.task_restarts

    def test_failure_before_start(self):
        engine = engine_with()
        spec = spec_for(engine)
        engine.schedule_failure(node=4, at=0.0)
        timing = engine.run_job(spec)
        assert timing.tasks_per_server[4] == 0

    def test_failure_with_hadoop(self):
        engine = engine_with(hadoop_framework())
        spec = spec_for(engine, blocks=12, app="grep")
        engine.schedule_failure(node=1, at=3.0)
        timing = engine.run_job(spec)
        assert timing.makespan > 0
        assert timing.tasks_per_server[1] <= timing.task_restarts + 2

    def test_failure_during_iterative_job(self):
        engine = engine_with()
        spec = spec_for(engine, blocks=12, app="kmeans", iterations=3)
        engine.schedule_failure(node=2, at=10.0)
        timing = engine.run_job(spec)
        assert len(timing.iteration_times) == 3

    def test_two_failures(self):
        engine = engine_with(nodes=8)
        spec = spec_for(engine, blocks=24)
        engine.schedule_failure(node=0, at=1.0)
        engine.schedule_failure(node=5, at=4.0)
        timing = engine.run_job(spec)
        assert not engine.alive(0) and not engine.alive(5)
        assert timing.makespan > 0

    def test_invalid_failure_args(self):
        engine = engine_with()
        with pytest.raises(SimulationError):
            engine.schedule_failure(node=99, at=1.0)
        with pytest.raises(SimulationError):
            engine.schedule_failure(node=0, at=-1.0)

    def test_determinism_with_failure(self):
        def once():
            engine = engine_with()
            spec = spec_for(engine)
            engine.schedule_failure(node=2, at=5.0)
            t = engine.run_job(spec)
            return t.makespan, t.task_restarts

        assert once() == once()
