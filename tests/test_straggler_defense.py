"""Straggler defense: speculation, gray-failure quarantine, result hygiene.

Four layers, cheapest first:

* unit tests for the new config knobs (``spec.*``/``health.*``), the
  :class:`ServiceTimeTracker` the detector reads, the
  :class:`HealthMonitor` judgment (decay, hysteresis, capped RTT
  penalties -- all on an injected clock), and the attempt-versioned
  :class:`IntermediateStore` semantics;
* heartbeat RTT plumbing: the wire shape, the tracker, and the
  ``/metrics`` exposition of the new per-worker health fields;
* transport: a send-site chaos delay defers the frame off-thread --
  the caller's future parks, the connection keeps serving;
* cluster integration: a delayed dispatch must not freeze an unrelated
  job; a serve-side straggler loses to its speculative copy with exact
  winner-only accounting and the loser's late spills stale-rejected; a
  timed-out attempt of an already-won task is absorbed (no failover);
  a quarantined worker gets no new maps yet stays a cluster member.

``CHAOS_SEED`` (CI's chaos-matrix runs 0/1/2) seeds every scripted
scenario; the delay schedules here are deterministic windows, so any
seed must pass identically.
"""

import json
import os
import time

import pytest

from repro.apps.wordcount import wordcount_job
from repro.apps.workloads import pack_records, text_corpus
from repro.chaos import FaultInjector
from repro.cluster import ClusterRuntime
from repro.cluster.health import HealthMonitor
from repro.cluster.heartbeat import LivenessTracker
from repro.cluster.messages import heartbeat_args
from repro.common.config import (
    ChaosConfig,
    ClusterConfig,
    DFSConfig,
    FaultRule,
    HealthConfig,
    NetConfig,
    SpecConfig,
)
from repro.common.errors import ConfigError
from repro.common.serialization import config_from_dict, config_to_dict
from repro.mapreduce.runtime import EclipseMRRuntime
from repro.mapreduce.shuffle import IntermediateStore
from repro.net.retry import RetryPolicy
from repro.net.rpc import ConnectionPool, RpcServer
from repro.observe.prometheus import render_exposition
from repro.sim.metrics import MetricsRegistry, ServiceTimeTracker

SEED = int(os.environ.get("CHAOS_SEED", "0"))

BLOCK = 2048
WORKERS = [f"worker-{i}" for i in range(4)]


def corpus() -> bytes:
    return pack_records(text_corpus(99, num_words=3000, vocab_size=60), BLOCK)


def _cfg(**overrides) -> ClusterConfig:
    return ClusterConfig(dfs=DFSConfig(block_size=BLOCK), **overrides)


def _wait_for(predicate, timeout=10.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def _map_counts(rt: ClusterRuntime) -> dict[str, int]:
    """Per-worker maps actually executed, straight from the workers."""
    return {
        wid: rt._call_worker(wid, "get_stats", {}).get("worker.maps_run", 0)
        for wid in rt.worker_ids
    }


def _probe_placement(data: bytes, fname: str, app_id: str) -> dict[str, int]:
    """Run the job once on a pristine cluster and report which workers
    executed maps.  Placement is deterministic (same corpus, same worker
    set, same LAF state), so a chaos run over the same inputs sends its
    maps to exactly these workers."""
    with ClusterRuntime(4, _cfg()) as rt:
        rt.upload(fname, data)
        rt.run(wordcount_job(fname, app_id=app_id))
        return _map_counts(rt)


# -- config plumbing ---------------------------------------------------------------


class TestStragglerConfig:
    def test_defaults_are_off(self):
        cfg = ClusterConfig()
        assert not cfg.spec.enabled
        assert not cfg.health.enabled

    def test_spec_validation(self):
        with pytest.raises(ConfigError):
            SpecConfig(slow_factor=0.5)  # a copy for every task
        with pytest.raises(ConfigError):
            SpecConfig(min_samples=0)
        with pytest.raises(ConfigError):
            SpecConfig(min_runtime_s=-1.0)
        with pytest.raises(ConfigError):
            SpecConfig(max_copies=1)  # the primary alone is not a copy

    def test_health_validation(self):
        with pytest.raises(ConfigError):
            HealthConfig(quarantine_threshold=0.0)
        with pytest.raises(ConfigError):
            HealthConfig(recover_threshold=-0.1)
        with pytest.raises(ConfigError):
            # hysteresis requires the lift bar below the trip bar
            HealthConfig(quarantine_threshold=1.0, recover_threshold=1.0)

    def test_manifest_round_trip(self):
        cfg = ClusterConfig(
            spec=SpecConfig(enabled=True, slow_factor=3.0, min_samples=2,
                            min_runtime_s=0.5, max_copies=3),
            health=HealthConfig(enabled=True, quarantine_threshold=4.0,
                                recover_threshold=1.0, decay_halflife_s=2.0,
                                rtt_slow_s=0.1, timeout_penalty=2.0,
                                slow_task_penalty=0.25),
        )
        wire = json.loads(json.dumps(config_to_dict(cfg)))
        back = config_from_dict(wire)
        assert back.spec == cfg.spec
        assert back.health == cfg.health

    def test_old_manifests_without_spec_health_still_load(self):
        wire = config_to_dict(ClusterConfig())
        wire.pop("spec")
        wire.pop("health")
        back = config_from_dict(wire)
        assert back.spec == SpecConfig()
        assert back.health == HealthConfig()


# -- the detector's service-time view ----------------------------------------------


class TestServiceTimeTracker:
    def test_count_p50_and_ewma(self):
        t = ServiceTimeTracker(alpha=0.5)
        for s in (1.0, 2.0, 3.0):
            t.observe(s)
        assert t.count == 3
        assert t.p50 == pytest.approx(2.0)
        # 1.0 -> 1.5 -> 2.25 under alpha=0.5
        assert t.ewma == pytest.approx(2.25)
        assert t.percentile(100.0) == pytest.approx(3.0)

    def test_empty_tracker_is_zero(self):
        t = ServiceTimeTracker()
        assert t.count == 0
        assert t.ewma == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceTimeTracker(alpha=0.0)
        with pytest.raises(ValueError):
            ServiceTimeTracker().observe(-0.1)


# -- the health monitor ------------------------------------------------------------


def _monitor(metrics=None, **overrides):
    now = [0.0]
    cfg = HealthConfig(enabled=True, **overrides)
    mon = HealthMonitor(cfg, metrics=metrics, clock=lambda: now[0])
    return mon, now


class TestHealthMonitor:
    def test_disabled_monitor_is_inert(self):
        mon = HealthMonitor(HealthConfig())  # enabled=False
        mon.penalize("w", 100.0)
        mon.observe_timeout("w")
        mon.observe_rtt("w", 10.0)
        mon.observe_slow_task("w")
        assert mon.score("w") == 0.0
        assert not mon.is_quarantined("w")
        assert mon.snapshot() == {}

    def test_timeouts_trip_the_quarantine(self):
        metrics = MetricsRegistry()
        mon, _now = _monitor(metrics)  # threshold 2.0, penalty 1.0
        mon.observe_timeout("w")
        assert not mon.is_quarantined("w")
        mon.observe_timeout("w")
        assert mon.is_quarantined("w")
        assert mon.quarantined() == ["w"]
        assert metrics.counter("health.quarantines").value == 1
        assert metrics.gauge("health.quarantined").value == 1

    def test_decay_recovers_with_hysteresis(self):
        metrics = MetricsRegistry()
        mon, now = _monitor(metrics, decay_halflife_s=5.0)
        mon.penalize("w", 2.0)
        assert mon.is_quarantined("w")
        now[0] = 5.0  # one half-life: 1.0 -- under the trip bar (2.0)
        # ...but still above the lift bar (0.5): no flapping.
        assert mon.is_quarantined("w")
        now[0] = 15.0  # three half-lives: 0.25 <= 0.5
        assert not mon.is_quarantined("w")
        assert mon.score("w") == pytest.approx(0.25)
        assert metrics.counter("health.recoveries").value == 1
        assert metrics.gauge("health.quarantined").value == 0

    def test_rtt_penalty_is_proportional_and_capped(self):
        mon, _now = _monitor(rtt_slow_s=0.25)
        mon.observe_rtt("w", 0.2)  # under budget: no suspicion
        assert mon.score("w") == 0.0
        mon.observe_rtt("w", 0.5)  # 2x budget -> +1.0
        assert mon.score("w") == pytest.approx(1.0)
        mon.observe_rtt("w", 60.0)  # pathological beat: capped at +2.0
        assert mon.score("w") == pytest.approx(3.0)

    def test_slow_task_penalty(self):
        mon, _now = _monitor(slow_task_penalty=0.5)
        mon.observe_slow_task("w")
        assert mon.score("w") == pytest.approx(0.5)

    def test_snapshot_has_no_recovery_side_effects(self):
        mon, now = _monitor(decay_halflife_s=1.0)
        mon.penalize("w", 2.0)
        now[0] = 10.0  # decayed far below the lift bar
        snap = mon.snapshot()
        assert snap["w"]["quarantined"] is True  # snapshot never lifts
        assert snap["w"]["score"] < 0.01
        assert not mon.is_quarantined("w")  # the read that lifts

    def test_forget_drops_all_state(self):
        metrics = MetricsRegistry()
        mon, _now = _monitor(metrics)
        mon.penalize("w", 5.0)
        assert mon.is_quarantined("w")
        mon.forget("w")
        assert mon.score("w") == 0.0
        assert not mon.is_quarantined("w")
        assert mon.snapshot() == {}
        assert metrics.gauge("health.quarantined").value == 0


# -- attempt-versioned spill store -------------------------------------------------


class TestStoreAttemptHygiene:
    def test_higher_attempt_overwrites_and_adjusts_bytes(self):
        store = IntermediateStore("w")
        assert store.receive("j", "t/0/0", [("a", 1)], 10, attempt=0)
        assert store.receive("j", "t/0/0", [("a", 2)], 14, attempt=1)
        assert store.bytes_received == 14  # replaced, not double-counted
        assert store.pairs_for("j") == [("a", 2)]

    def test_lower_attempt_is_stale_rejected(self):
        store = IntermediateStore("w")
        store.receive("j", "t/0/0", [("a", 2)], 14, attempt=1)
        assert not store.receive("j", "t/0/0", [("a", 1)], 10, attempt=0)
        assert store.stale_rejected == 1
        assert store.bytes_received == 14
        assert store.pairs_for("j") == [("a", 2)]

    def test_same_attempt_redelivery_overwrites(self):
        store = IntermediateStore("w")
        store.receive("j", "t/0/0", [("a", 1)], 10, attempt=2)
        assert store.receive("j", "t/0/0", [("a", 1)], 10, attempt=2)
        assert store.bytes_received == 10

    def test_attempt_filtered_discard_spares_the_winner(self):
        store = IntermediateStore("w")
        store.receive("j", "t/0/0", [("a", 2)], 14, attempt=1)  # winner
        store.receive("j", "t/1/0", [("b", 1)], 10, attempt=0)  # loser-only
        # The loser's retraction names both sids at its attempt number:
        # only the spill still stored at attempt 0 goes.
        assert store.discard_spills("j", ["t/0/0", "t/1/0"], attempt=0) == 1
        assert store.pairs_for("j") == [("a", 2)]
        assert store.bytes_received == 14
        # An unfiltered discard still removes anything.
        assert store.discard_spills("j", ["t/0/0"]) == 1
        assert store.bytes_received == 0


# -- heartbeat RTT plumbing --------------------------------------------------------


class TestHeartbeatRtt:
    def test_wire_shape_omits_missing_sample(self):
        assert heartbeat_args("w", 3) == {"worker_id": "w", "seq": 3}
        args = heartbeat_args("w", 4, rtt_s=0.012)
        assert args["rtt_s"] == pytest.approx(0.012)

    def test_tracker_keeps_latest_rtt(self):
        tracker = LivenessTracker(interval=0.25, miss_threshold=4)
        tracker.register("w")
        assert tracker.rtt_of("w") is None  # the RTT rides one beat late
        tracker.beat("w", rtt_s=0.010)
        tracker.beat("w")  # a reconnect beat keeps the last sample
        assert tracker.rtt_of("w") == pytest.approx(0.010)
        tracker.beat("w", rtt_s=0.020)
        assert tracker.rtt_of("w") == pytest.approx(0.020)
        tracker.remove("w")
        assert tracker.rtt_of("w") is None

    def test_cluster_workers_report_rtts(self):
        with ClusterRuntime(2, _cfg()) as rt:
            assert _wait_for(
                lambda: set(rt.coordinator.heartbeat_rtts()) == set(rt.worker_ids)
            ), "workers never shipped a measured heartbeat RTT"
            for wid, rtt in rt.coordinator.heartbeat_rtts().items():
                assert rtt >= 0.0, wid


class TestHealthExposition:
    def test_worker_health_fields_become_labeled_gauges(self):
        coordinator = {"counters": {}, "gauges": {}, "histograms": {}}
        workers = {
            "worker-0": {
                "worker_id": "worker-0",
                "heartbeat_rtt_s": 0.012,
                "health_score": 1.5,
                "quarantined": True,  # bool: must NOT leak into the text
                "health_quarantined": 1,  # ...this 0/1 gauge ships instead
                "registry": {},
            }
        }
        text = render_exposition(coordinator, workers)
        assert 'eclipsemr_heartbeat_rtt_s{worker_id="worker-0"} 0.012' in text
        assert 'eclipsemr_health_score{worker_id="worker-0"} 1.5' in text
        assert 'eclipsemr_health_quarantined{worker_id="worker-0"} 1' in text
        assert "eclipsemr_quarantined" not in text


# -- transport: deferred send delays -----------------------------------------------


class TestNonBlockingSendDelay:
    def test_delayed_send_parks_the_future_not_the_caller(self):
        metrics = MetricsRegistry()
        srv = RpcServer({"echo": lambda value: value}, net=NetConfig(),
                        metrics=MetricsRegistry()).start()
        inj = FaultInjector("coordinator", ChaosConfig(seed=SEED, rules=(
            FaultRule(op="delay", site="send", method="echo", count=1,
                      delay_s=1.0),
        )), metrics=metrics)
        pool = ConnectionPool(NetConfig(), metrics=metrics,
                              policy=RetryPolicy(attempts=1, base_delay=0.01,
                                                 max_delay=0.02, jitter=0.0,
                                                 sleep=lambda _s: None))
        pool.fault_hook = inj.on_send
        try:
            t0 = time.monotonic()
            fut = pool.call_async(srv.address, "echo", {"value": 1})
            issue_took = time.monotonic() - t0
            assert issue_took < 0.5, "call_async slept through the chaos delay"
            # The connection keeps serving while the delayed frame pends.
            assert pool.call(srv.address, "echo", {"value": 2}) == 2
            assert not fut.done()
            assert fut.result(timeout=5.0) == 1  # delivered after the delay
            assert time.monotonic() - t0 >= 1.0
            assert metrics.counter("net.sends_delayed").value == 1
        finally:
            pool.close_all()
            srv.stop()


# -- cluster integration -----------------------------------------------------------


class TestSchedulerNotFrozenByDelay:
    def test_unrelated_job_dispatches_during_a_delayed_send(self):
        """A chaos delay on one job's dispatch RPC must not stall the
        scheduler loop: a second job submitted while the delayed frame
        pends runs to completion well inside the delay window."""
        data = corpus()
        seq = EclipseMRRuntime(4, config=_cfg())
        seq.upload("frozen.txt", data)
        ref = seq.run(wordcount_job("frozen.txt", app_id="fz-a")).output

        delay = 3.0
        cfg = _cfg(chaos=ChaosConfig(seed=SEED, rules=(
            FaultRule(op="delay", site="send", src="coordinator",
                      method="run_map", count=1, delay_s=delay),
        )))
        with ClusterRuntime(4, cfg) as rt:
            rt.upload("frozen.txt", data)
            m = rt.metrics
            ha = rt.submit(wordcount_job("frozen.txt", app_id="fz-a"))
            # Job A's first dispatch is the delayed frame; wait until the
            # transport has parked it so B's whole life fits inside the
            # delay window.
            assert _wait_for(
                lambda: m.counter("net.sends_delayed").value >= 1, timeout=15.0
            ), "the chaos delay never fired"
            t0 = time.monotonic()
            hb = rt.submit(wordcount_job("frozen.txt", app_id="fz-b"))
            rb = hb.result(timeout=60)
            elapsed_b = time.monotonic() - t0
            ra = ha.result(timeout=60)

            assert rb.output == ref
            assert ra.output == ref
            assert elapsed_b < delay, (
                f"job B took {elapsed_b:.2f}s: the delayed send froze dispatch"
            )
            assert m.counter("net.sends_delayed").value == 1
            # The delay is latency, not loss: nobody was failed over.
            assert m.counter("cluster.failovers").value == 0
            assert ra.stats.task_retries == 0 and rb.stats.task_retries == 0


class TestSpeculativeExecution:
    DELAY = 4.0

    def _spec_cfg(self, victim, **net_overrides):
        return _cfg(
            spec=SpecConfig(enabled=True),
            health=HealthConfig(enabled=True),
            net=NetConfig(**net_overrides) if net_overrides else NetConfig(),
            chaos=ChaosConfig(seed=SEED, rules=(
                FaultRule(op="delay", site="serve", dst=victim,
                          method="run_map", count=1, delay_s=self.DELAY),
            )),
        )

    def test_spec_off_lone_job_stays_bit_equal(self):
        """The whole defense sits behind ``spec.*``/``health.*`` seams:
        with both off (the default) a lone cluster job is bit-equal to
        the sequential plane -- output, stats, and LAF placement."""
        data = corpus()
        seq = EclipseMRRuntime(4, config=_cfg())
        seq.upload("seq.txt", data)
        ref = seq.run(wordcount_job("seq.txt", app_id="sd-seq"))
        with ClusterRuntime(4, _cfg()) as rt:
            rt.upload("seq.txt", data)
            res = rt.run(wordcount_job("seq.txt", app_id="sd-seq"))
            assert res.output == ref.output
            assert res.stats.tasks_per_server == ref.stats.tasks_per_server
            assert res.stats.spills == ref.stats.spills
            assert res.stats.bytes_shuffled == ref.stats.bytes_shuffled
            assert res.stats.map_tasks == ref.stats.map_tasks
            assert rt.metrics.counter("sched.tasks_speculated").value == 0

    def test_copy_beats_the_straggler_and_loser_spills_are_retracted(self):
        """One worker serves its first map 4s late: a speculative copy
        wins on another worker, the job finishes without waiting out the
        delay, the accounting stays exactly winner-only, and the loser's
        late deliveries are retracted from the already-swept stores."""
        data = corpus()
        seq = EclipseMRRuntime(4, config=_cfg())
        seq.upload("spec.txt", data)
        ref = seq.run(wordcount_job("spec.txt", app_id="sd-spec"))

        placement = _probe_placement(data, "spec.txt", "sd-spec")
        victim = max(placement, key=placement.get)
        assert placement[victim] >= 1

        with ClusterRuntime(4, self._spec_cfg(victim)) as rt:
            rt.upload("spec.txt", data)
            t0 = time.monotonic()
            res = rt.run(wordcount_job("spec.txt", app_id="sd-spec"))
            elapsed = time.monotonic() - t0
            m = rt.metrics

            assert res.output == ref.output
            assert elapsed < self.DELAY, (
                f"job took {elapsed:.2f}s: it waited out the straggler"
            )
            # Winner-only accounting: exactly the sequential plane's
            # volumes despite the extra copy having run.
            assert res.stats.map_tasks == ref.stats.map_tasks
            assert res.stats.spills == ref.stats.spills
            assert res.stats.bytes_shuffled == ref.stats.bytes_shuffled
            assert res.stats.task_retries == 0  # a race, not a retry

            assert m.counter("sched.tasks_speculated").value >= 1
            assert m.counter("sched.speculation_wins").value >= 1
            # Slowness is not death: the victim is never failed over.
            assert m.counter("cluster.failovers").value == 0
            assert victim in rt.worker_ids
            # The scheduler fed the slow-task signal to the health plane.
            assert rt.coordinator.health.score(victim) > 0.0
            assert m.counter("health.quarantines").value == 0

            # The losing attempt was the *primary*, not the copy: losses
            # count only speculative copies that lose their race.
            assert m.counter("sched.speculation_losses").value == 0

            # The loser finishes *after* the job completed and the eager
            # end-of-job cleanup swept every store.  Its mid-flight
            # deliveries re-created the spills -- an empty store accepts
            # any attempt number -- so the scheduler retracts the late
            # manifest outright: one zombie result, one spill pulled
            # back per destination, and the stores end empty.
            assert _wait_for(
                lambda: m.counter("sched.zombie_results").value >= 1,
                timeout=self.DELAY + 8.0,
            ), "the losing attempt never settled"
            assert _wait_for(
                lambda: (m.counter("sched.late_spills_retracted").value
                         == len(rt.worker_ids)),
            ), "the loser's late spills were not retracted"

            held = {
                wid: rt._call_worker(wid, "get_stats", {}).get("spills_held", 0)
                for wid in rt.worker_ids
            }
            assert held == {wid: 0 for wid in rt.worker_ids}, (
                f"resurrected spills left behind: {held}"
            )

    def test_timed_out_attempt_of_a_won_task_is_absorbed(self):
        """With a short RPC deadline the straggling attempt times out
        *after* its task was already won: the failure is absorbed as
        slowness evidence -- no WorkerLost, no failover, no retry."""
        data = corpus()
        seq = EclipseMRRuntime(4, config=_cfg())
        seq.upload("absorb.txt", data)
        ref = seq.run(wordcount_job("absorb.txt", app_id="sd-abs"))

        placement = _probe_placement(data, "absorb.txt", "sd-abs")
        victim = max(placement, key=placement.get)

        with ClusterRuntime(4, self._spec_cfg(victim, call_timeout=2.0)) as rt:
            rt.upload("absorb.txt", data)
            res = rt.run(wordcount_job("absorb.txt", app_id="sd-abs"))
            m = rt.metrics

            assert res.output == ref.output
            assert res.stats.spills == ref.stats.spills
            assert res.stats.bytes_shuffled == ref.stats.bytes_shuffled
            assert res.stats.task_retries == 0

            assert _wait_for(
                lambda: m.counter("sched.attempt_failures_absorbed").value >= 1,
                timeout=self.DELAY + 8.0,
            ), "the straggler's timeout was never absorbed"
            assert m.counter("sched.task_timeouts").value == 0
            assert m.counter("cluster.failovers").value == 0
            assert victim in rt.worker_ids
            # The absorbed timeout fed the health plane (1.0 < the 2.0
            # trip bar: suspicion, not yet quarantine).
            assert rt.coordinator.health.score(victim) > 0.0

            # The victim still *ran* the map once the serve delay
            # elapsed, delivering into stores the cleanup had already
            # swept.  The settled attempt's late result is retracted,
            # not merely ignored -- the timed-out-then-executed
            # double-delivery hole stays closed.
            assert _wait_for(
                lambda: (m.counter("sched.late_spills_retracted").value
                         >= len(rt.worker_ids)),
                timeout=self.DELAY + 8.0,
            ), "the timed-out attempt's late spills were never retracted"
            held = sum(
                rt._call_worker(wid, "get_stats", {}).get("spills_held", 0)
                for wid in rt.worker_ids
            )
            assert held == 0


class TestQuarantineDispatch:
    def test_quarantined_worker_gets_no_new_maps_but_stays_a_member(self):
        data = corpus()
        seq = EclipseMRRuntime(4, config=_cfg())
        seq.upload("quar.txt", data)
        ref = seq.run(wordcount_job("quar.txt", app_id="sd-quar"))

        placement = _probe_placement(data, "quar.txt", "sd-quar")
        victim = max(placement, key=placement.get)
        assert placement[victim] >= 1

        # A long half-life keeps the quarantine up for the whole job.
        cfg = _cfg(health=HealthConfig(enabled=True, decay_halflife_s=60.0))
        with ClusterRuntime(4, cfg) as rt:
            rt.upload("quar.txt", data)
            rt.coordinator.health.penalize(victim, 10.0)
            assert rt.coordinator.health.is_quarantined(victim)
            assert rt.metrics.counter("health.quarantines").value == 1

            res = rt.run(wordcount_job("quar.txt", app_id="sd-quar"))
            m = rt.metrics

            assert res.output == ref.output
            # Every map the placement would have sent there rerouted.
            assert m.counter("sched.quarantine_reroutes").value >= placement[victim]
            counts = _map_counts(rt)
            assert counts[victim] == 0, "a map was dispatched to quarantine"
            assert sum(counts.values()) == ref.stats.map_tasks
            # Quarantine is not failover: still a member, still serving.
            assert victim in rt.worker_ids
            assert m.counter("cluster.failovers").value == 0
            snap = rt.coordinator.health.snapshot()
            assert snap[victim]["quarantined"] is True


class TestObserveHealthEndpoints:
    def test_metrics_json_and_exposition_carry_health_fields(self):
        from repro.common.config import ObserveConfig
        from urllib.request import urlopen

        def _get(url):
            with urlopen(url) as resp:
                return resp.read().decode("utf-8")

        cfg = _cfg(health=HealthConfig(enabled=True, decay_halflife_s=60.0),
                   observe=ObserveConfig(enabled=True, port=0,
                                         sample_interval=0.05))
        with ClusterRuntime(2, cfg) as rt:
            wid = rt.worker_ids[0]
            rt.coordinator.health.penalize(wid, 5.0)

            def _sampled():
                payload = json.loads(_get(rt.observer.url + "/metrics.json"))
                stats = payload["workers"].get(wid) or {}
                return ("health_score" in stats
                        and "heartbeat_rtt_s" in stats)

            assert _wait_for(_sampled, timeout=15.0), (
                "observe sampler never picked up the health fields"
            )
            payload = json.loads(_get(rt.observer.url + "/metrics.json"))
            stats = payload["workers"][wid]
            assert stats["quarantined"] is True
            assert stats["health_quarantined"] == 1
            assert stats["health_score"] > 0.0
            assert stats["heartbeat_rtt_s"] >= 0.0

            text = _get(rt.observer.url + "/metrics")
            assert f'eclipsemr_health_score{{worker_id="{wid}"}}' in text
            assert f'eclipsemr_health_quarantined{{worker_id="{wid}"}} 1' in text
            assert "eclipsemr_heartbeat_rtt_s{" in text
