"""Unit and property tests for the consistent hash ring."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import RingError
from repro.common.hashing import HashSpace
from repro.dht.ring import ConsistentHashRing


def paper_ring():
    """The inner (DHT FS) ring of Fig. 1: six servers on a [0, 60) space."""
    sp = HashSpace(60)
    ring = ConsistentHashRing(sp)
    for name, pos in [("A", 5), ("B", 15), ("C", 26), ("D", 39), ("E", 47), ("F", 57)]:
        ring.add_node(name, pos)
    return ring


class TestRingBasics:
    def test_empty_ring_lookup_rejected(self):
        ring = ConsistentHashRing(HashSpace(100))
        with pytest.raises(RingError):
            ring.owner_of(5)

    def test_figure1_ownership(self):
        """Fig. 1's table: A owns [57, 5), B [5, 15), ... F [47, 57)."""
        ring = paper_ring()
        assert ring.owner_of(57) == "A"
        assert ring.owner_of(4) == "A"
        assert ring.owner_of(5) == "B"
        assert ring.owner_of(14) == "B"
        assert ring.owner_of(15) == "C"
        assert ring.owner_of(38) == "D"
        assert ring.owner_of(39) == "E"
        assert ring.owner_of(47) == "F"
        assert ring.owner_of(56) == "F"

    def test_figure1_ranges(self):
        ring = paper_ring()
        r = ring.range_of("A")
        assert (r.start, r.end) == (57, 5)
        r = ring.range_of("B")
        assert (r.start, r.end) == (5, 15)

    def test_figure2_example(self):
        """Fig. 2: file hash key 38 -> metadata owner D; block keys 5, 56."""
        ring = paper_ring()
        assert ring.owner_of(38) == "D"
        assert ring.owner_of(5) == "B"   # paper: "block ... stored in ... B"
        assert ring.owner_of(56) == "F"  # key 56 is in F's DFS range [47,57)

    def test_neighbors(self):
        ring = paper_ring()
        assert ring.successor("A") == "B"
        assert ring.predecessor("A") == "F"
        assert ring.successor("F") == "A"
        assert ring.predecessor("B") == "A"

    def test_single_node_owns_everything(self):
        ring = ConsistentHashRing(HashSpace(100))
        ring.add_node("solo", 10)
        assert ring.owner_of(0) == "solo"
        assert ring.owner_of(99) == "solo"
        assert ring.successor("solo") == "solo"
        assert ring.predecessor("solo") == "solo"
        assert ring.range_of("solo").is_full

    def test_duplicate_node_rejected(self):
        ring = paper_ring()
        with pytest.raises(RingError):
            ring.add_node("A", 30)

    def test_position_collision_rejected(self):
        ring = paper_ring()
        with pytest.raises(RingError):
            ring.add_node("G", 5)

    def test_remove_merges_range_into_successor(self):
        ring = paper_ring()
        ring.remove_node("C")  # C owned [15, 26)
        assert ring.owner_of(20) == "D"
        r = ring.range_of("D")
        assert (r.start, r.end) == (15, 39)

    def test_remove_unknown_rejected(self):
        ring = paper_ring()
        with pytest.raises(RingError):
            ring.remove_node("Z")

    def test_default_position_is_hash_of_id(self):
        sp = HashSpace(2**32)
        ring = ConsistentHashRing(sp)
        node = ring.add_node("worker-7")
        assert node.position == sp.key_of("worker-7")

    def test_replica_set_owner_pred_succ(self):
        ring = paper_ring()
        assert ring.replica_set(20) == ["C", "B", "D"]  # owner, pred, succ

    def test_replica_set_small_ring_dedupes(self):
        ring = ConsistentHashRing(HashSpace(100))
        ring.add_node("x", 10)
        ring.add_node("y", 60)
        assert set(ring.replica_set(5)) == {"x", "y"}
        ring2 = ConsistentHashRing(HashSpace(100))
        ring2.add_node("solo", 10)
        assert ring2.replica_set(5) == ["solo"]

    def test_replica_set_extra_levels(self):
        ring = paper_ring()
        assert ring.replica_set(20, extra=0) == ["C"]
        assert ring.replica_set(20, extra=1) == ["C", "B"]

    def test_walk(self):
        ring = paper_ring()
        assert list(ring.walk("D")) == ["D", "E", "F", "A", "B", "C"]

    def test_nodes_sorted_by_position(self):
        ring = paper_ring()
        assert ring.nodes == ["A", "B", "C", "D", "E", "F"]


# -- property tests ------------------------------------------------------------

@st.composite
def ring_and_keys(draw):
    size = draw(st.integers(16, 100_000))
    n = draw(st.integers(1, 12))
    positions = draw(
        st.lists(st.integers(0, size - 1), min_size=n, max_size=n, unique=True)
    )
    sp = HashSpace(size)
    ring = ConsistentHashRing(sp)
    for i, pos in enumerate(positions):
        ring.add_node(f"n{i}", pos)
    keys = draw(st.lists(st.integers(0, size - 1), min_size=1, max_size=20))
    return ring, keys


@given(ring_and_keys())
@settings(max_examples=100)
def test_ranges_partition_the_space(rk):
    ring, keys = rk
    ranges = ring.ranges()
    for key in keys:
        owners = [n for n, r in ranges.items() if key in r]
        assert len(owners) == 1
        assert owners[0] == ring.owner_of(key)


@given(ring_and_keys())
@settings(max_examples=100)
def test_minimal_disruption_on_leave(rk):
    """Consistent hashing's defining property: removing one node only moves
    the keys that node owned."""
    ring, keys = rk
    if len(ring) < 2:
        return
    before = {k: ring.owner_of(k) for k in keys}
    victim = ring.nodes[0]
    ring.remove_node(victim)
    for k in keys:
        after = ring.owner_of(k)
        if before[k] != victim:
            assert after == before[k]


@given(ring_and_keys(), st.integers(0, 2**31))
@settings(max_examples=100)
def test_join_only_steals_from_successor(rk, seed):
    ring, keys = rk
    size = ring.space.size
    pos = seed % size
    if pos in [ring.position_of(n) for n in ring.nodes]:
        return
    before = {k: ring.owner_of(k) for k in keys}
    ring.add_node("joiner", pos)
    succ = ring.successor("joiner")
    for k in keys:
        after = ring.owner_of(k)
        if after != before[k]:
            # the only moves allowed: successor's keys moving to the joiner
            assert after == "joiner" and before[k] == succ


@given(ring_and_keys())
@settings(max_examples=60)
def test_successor_predecessor_are_inverse(rk):
    ring, _ = rk
    for n in ring.nodes:
        assert ring.predecessor(ring.successor(n)) == n
        assert ring.successor(ring.predecessor(n)) == n
