"""Stress tests for the multiplexed, pipelined RPC data plane.

These pin the three guarantees the cluster layer builds on:

* many concurrent ``call_async`` calls share one connection and complete
  out of order without ever mixing up responses;
* a connection that dies mid-pipeline fails *every* in-flight future
  with a transport error (the ``WorkerLost`` signal);
* oversized payloads are rejected on the send side, before any bytes
  reach the socket, leaving the connection healthy.
"""

import threading
import time
from concurrent.futures import wait

import pytest

from repro.common.config import NetConfig
from repro.common.errors import (
    FramingError,
    NetworkError,
    RpcConnectionError,
)
from repro.net.rpc import Blob, ConnectionPool, RpcClient, RpcServer
from repro.sim.metrics import MetricsRegistry


@pytest.fixture()
def server():
    gate = threading.Event()

    def echo(value):
        return value

    def tagged_sleep(tag, duration):
        time.sleep(duration)
        return tag

    def wait_for_gate(tag):
        gate.wait(10.0)
        return tag

    def echo_blob(payload):
        # payload arrives as a memoryview over the frame buffer
        return Blob(bytes(payload))

    def blob_len(payload):
        return len(payload)

    srv = RpcServer(
        {
            "echo": echo,
            "tagged_sleep": tagged_sleep,
            "wait_for_gate": wait_for_gate,
            "echo_blob": echo_blob,
            "blob_len": blob_len,
        },
        net=NetConfig(),
    ).start()
    srv.gate = gate
    yield srv
    gate.set()
    srv.stop()


class TestPipelining:
    def test_many_async_calls_on_one_connection(self, server):
        client = RpcClient(server.host, server.port)
        try:
            futures = [client.call_async("echo", {"value": i}) for i in range(100)]
            assert [f.result(10.0) for f in futures] == list(range(100))
        finally:
            client.close()

    def test_responses_complete_out_of_order(self, server):
        """A slow early request must not block fast later ones."""
        client = RpcClient(server.host, server.port)
        try:
            order: list[str] = []
            slow = client.call_async("tagged_sleep", {"tag": "slow", "duration": 0.4})
            fast = client.call_async("tagged_sleep", {"tag": "fast", "duration": 0.0})
            slow.add_done_callback(lambda f: order.append(f.result()))
            fast.add_done_callback(lambda f: order.append(f.result()))
            wait([slow, fast], timeout=10.0)
            assert order == ["fast", "slow"]
        finally:
            client.close()

    def test_no_response_crosses_callers(self, server):
        """Interleaved calls from many threads each get their own value back."""
        client = RpcClient(server.host, server.port)
        mismatches: list[tuple[int, int]] = []

        def caller(base: int) -> None:
            for i in range(50):
                value = base * 1000 + i
                got = client.call("echo", {"value": value}, timeout=10.0)
                if got != value:
                    mismatches.append((value, got))

        try:
            threads = [threading.Thread(target=caller, args=(t,)) for t in range(8)]
            for th in threads:
                th.start()
            for th in threads:
                th.join(timeout=30.0)
            assert mismatches == []
        finally:
            client.close()

    def test_pipelined_is_concurrent_server_side(self, server):
        """N sleeps pipelined on one connection overlap, not serialize."""
        client = RpcClient(server.host, server.port)
        try:
            started = time.perf_counter()
            futures = [
                client.call_async("tagged_sleep", {"tag": i, "duration": 0.2})
                for i in range(8)
            ]
            assert sorted(f.result(10.0) for f in futures) == list(range(8))
            elapsed = time.perf_counter() - started
            assert elapsed < 8 * 0.2 * 0.75  # far below the serial sum
        finally:
            client.close()


class TestConnectionDeath:
    def test_death_mid_pipeline_fails_every_future(self, server):
        client = RpcClient(server.host, server.port)
        futures = [client.call_async("wait_for_gate", {"tag": i}) for i in range(10)]
        assert client.in_flight == 10
        client.close()  # dies with all 10 in flight
        for future in futures:
            with pytest.raises(NetworkError):
                future.result(5.0)
        server.gate.set()

    def test_server_drop_fails_in_flight(self, server):
        client = RpcClient(server.host, server.port)
        try:
            futures = [client.call_async("wait_for_gate", {"tag": i}) for i in range(5)]
            server.stop()  # coordinator side goes away mid-call
            for future in futures:
                with pytest.raises(RpcConnectionError):
                    future.result(5.0)
            assert client.closed
        finally:
            server.gate.set()
            client.close()

    def test_call_async_after_close_raises(self, server):
        client = RpcClient(server.host, server.port)
        client.close()
        with pytest.raises(RpcConnectionError):
            client.call_async("echo", {"value": 1})


class TestBlobs:
    def test_request_blob_round_trip(self, server):
        client = RpcClient(server.host, server.port)
        try:
            payload = bytes(range(256)) * 1024  # 256 KiB
            assert client.call(
                "blob_len", {}, blob=payload, blob_arg="payload"
            ) == len(payload)
        finally:
            client.close()

    def test_response_blob_round_trip(self, server):
        client = RpcClient(server.host, server.port)
        try:
            payload = b"\x00\x01\x02" * 100_000
            got = client.call("echo_blob", {}, blob=payload, blob_arg="payload")
            assert bytes(got) == payload
        finally:
            client.close()

    def test_pipelined_blobs_do_not_interleave(self, server):
        """Envelope+blob pairs from concurrent senders stay paired."""
        client = RpcClient(server.host, server.port)
        errors: list[str] = []

        def pusher(seed: int) -> None:
            for i in range(20):
                payload = bytes([seed]) * (1000 + i)
                got = client.call("echo_blob", {}, blob=payload, blob_arg="payload",
                                  timeout=10.0)
                if bytes(got) != payload:
                    errors.append(f"seed {seed} iteration {i}")

        try:
            threads = [threading.Thread(target=pusher, args=(s,)) for s in range(6)]
            for th in threads:
                th.start()
            for th in threads:
                th.join(timeout=30.0)
            assert errors == []
        finally:
            client.close()


class TestSendSideLimits:
    def test_oversized_blob_rejected_before_send(self):
        net = NetConfig(max_frame_bytes=4096)
        metrics = MetricsRegistry()
        srv = RpcServer({"blob_len": lambda payload: len(payload)}, net=net).start()
        client = RpcClient(srv.host, srv.port, net=net, metrics=metrics)
        try:
            with pytest.raises(FramingError):
                client.call("blob_len", {}, blob=b"x" * 8192, blob_arg="payload")
            assert metrics.counter("net.frames_rejected").value == 1
            # No bytes hit the socket: the connection is still usable.
            assert not client.closed
            assert client.call("blob_len", {}, blob=b"y" * 100,
                               blob_arg="payload") == 100
        finally:
            client.close()
            srv.stop()

    def test_pool_does_not_retry_send_side_framing_error(self):
        net = NetConfig(max_frame_bytes=4096, retry_attempts=3)
        metrics = MetricsRegistry()
        srv = RpcServer({"blob_len": lambda payload: len(payload)}, net=net).start()
        pool = ConnectionPool(net, metrics=metrics)
        try:
            with pytest.raises(FramingError):
                pool.call(srv.address, "blob_len", {}, blob=b"x" * 8192,
                          blob_arg="payload")
            assert metrics.counter("rpc.retries").value == 0
        finally:
            pool.close_all()
            srv.stop()


class TestPoolFanOut:
    def test_call_many_pipelines_one_peer(self, server):
        pool = ConnectionPool(NetConfig(), metrics=MetricsRegistry())
        try:
            calls = [("echo", {"value": i}) for i in range(30)]
            assert pool.call_many(server.address, calls) == list(range(30))
        finally:
            pool.close_all()

    def test_broadcast_reaches_every_peer(self):
        net = NetConfig()
        servers = [
            RpcServer({"echo": lambda value, t=tag: (t, value)}, net=net).start()
            for tag in range(4)
        ]
        pool = ConnectionPool(net)
        try:
            results = pool.broadcast([s.address for s in servers],
                                     "echo", {"value": 7})
            assert sorted(results) == [(t, 7) for t in range(4)]
        finally:
            pool.close_all()
            for srv in servers:
                srv.stop()

    def test_broadcast_surfaces_dead_peer_after_draining(self):
        net = NetConfig(retry_attempts=1)
        alive = RpcServer({"echo": lambda value: value}, net=net).start()
        dead = RpcServer({"echo": lambda value: value}, net=net).start()
        dead_addr = dead.address
        dead.stop()
        pool = ConnectionPool(net)
        try:
            with pytest.raises(NetworkError):
                pool.broadcast([alive.address, dead_addr], "echo", {"value": 1})
        finally:
            pool.close_all()
            alive.stop()
