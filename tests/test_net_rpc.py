"""Tests for the RPC layer: server, client, pool, retry policy."""

import random
import socket
import threading
import time

import pytest

from repro.common.config import NetConfig
from repro.common.errors import (
    ConfigError,
    RpcConnectionError,
    RpcRemoteError,
    RpcTimeout,
)
from repro.net.retry import RetryPolicy
from repro.net.rpc import ConnectionPool, RpcClient, RpcServer
from repro.sim.metrics import MetricsRegistry


@pytest.fixture()
def server():
    events = []

    def echo(value):
        return value

    def boom():
        raise ValueError("it broke")

    def boom_with_data():
        exc = RuntimeError("peer gone")
        exc.rpc_data = {"target": "worker-3"}
        raise exc

    def slow(duration):
        time.sleep(duration)
        return "done"

    srv = RpcServer(
        {"echo": echo, "boom": boom, "boom_with_data": boom_with_data, "slow": slow},
        net=NetConfig(),
    ).start()
    yield srv
    srv.stop()


class TestRpcClientServer:
    def test_echo_round_trip(self, server):
        client = RpcClient(server.host, server.port)
        try:
            assert client.call("echo", {"value": {"k": [1, 2, 3]}}) == {"k": [1, 2, 3]}
        finally:
            client.close()

    def test_sequential_calls_reuse_connection(self, server):
        client = RpcClient(server.host, server.port)
        try:
            for i in range(20):
                assert client.call("echo", {"value": i}) == i
        finally:
            client.close()

    def test_remote_error_propagates_type_and_message(self, server):
        client = RpcClient(server.host, server.port)
        try:
            with pytest.raises(RpcRemoteError) as err:
                client.call("boom")
            assert err.value.etype == "ValueError"
            assert "it broke" in err.value.message
        finally:
            client.close()

    def test_remote_error_carries_rpc_data(self, server):
        client = RpcClient(server.host, server.port)
        try:
            with pytest.raises(RpcRemoteError) as err:
                client.call("boom_with_data")
            assert err.value.data == {"target": "worker-3"}
        finally:
            client.close()

    def test_unknown_method(self, server):
        client = RpcClient(server.host, server.port)
        try:
            with pytest.raises(RpcRemoteError, match="no handler"):
                client.call("does_not_exist")
        finally:
            client.close()

    def test_per_call_timeout(self, server):
        client = RpcClient(server.host, server.port)
        try:
            with pytest.raises(RpcTimeout):
                client.call("slow", {"duration": 5.0}, timeout=0.1)
        finally:
            client.close()

    def test_connect_refused(self):
        # Grab a port that is definitely not listening.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(RpcConnectionError):
            RpcClient("127.0.0.1", port)

    def test_concurrent_clients(self, server):
        errors = []

        def worker(n):
            try:
                client = RpcClient(server.host, server.port)
                try:
                    for i in range(10):
                        assert client.call("echo", {"value": (n, i)}) == (n, i)
                finally:
                    client.close()
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []


class TestRetryPolicy:
    def test_backoff_sequence_is_deterministic_with_pinned_rng(self):
        policy = RetryPolicy(
            attempts=5, base_delay=0.1, max_delay=1.0, jitter=0.0, rng=random.Random(7)
        )
        assert [policy.backoff(i) for i in range(5)] == [
            pytest.approx(0.1),
            pytest.approx(0.2),
            pytest.approx(0.4),
            pytest.approx(0.8),
            pytest.approx(1.0),  # capped
        ]

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=10.0, jitter=0.5,
                             rng=random.Random(3))
        for attempt in range(8):
            base = min(10.0, 0.1 * 2**attempt)
            delay = policy.backoff(attempt)
            assert base * 0.5 <= delay <= base * 1.5

    def test_call_retries_then_succeeds(self):
        sleeps = []
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise ConnectionError("nope")
            return "ok"

        policy = RetryPolicy(attempts=4, base_delay=0.5, max_delay=8.0, jitter=0.0,
                             sleep=sleeps.append)
        assert policy.call(flaky, retry_on=(ConnectionError,)) == "ok"
        assert len(calls) == 3
        assert sleeps == [pytest.approx(0.5), pytest.approx(1.0)]

    def test_call_exhausts_attempts(self):
        sleeps = []

        def always_fails():
            raise ConnectionError("still down")

        policy = RetryPolicy(attempts=3, base_delay=0.2, max_delay=1.0, jitter=0.0,
                             sleep=sleeps.append)
        with pytest.raises(ConnectionError):
            policy.call(always_fails, retry_on=(ConnectionError,))
        assert sleeps == [pytest.approx(0.2), pytest.approx(0.4)]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=1.0, max_delay=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_elapsed=0.0)


class TestRetryDeadline:
    """``max_elapsed``: a total-elapsed budget across one logical call."""

    def test_give_up_sequence_is_pinned_by_the_injected_clock(self):
        """attempts=10 would sleep 1+2+4+8... seconds; a 5 s elapsed budget
        with each attempt burning 1 s stops after sleeps [1, 2] -- the
        third backoff (4 s from t=3) would end past the deadline."""
        now = [0.0]
        sleeps = []
        calls = []

        def failing():
            calls.append(1)
            now[0] += 1.0
            raise ConnectionError("down")

        policy = RetryPolicy(attempts=10, base_delay=1.0, max_delay=8.0,
                             jitter=0.0, max_elapsed=5.0,
                             sleep=sleeps.append, clock=lambda: now[0])
        with pytest.raises(ConnectionError):
            policy.call(failing, retry_on=(ConnectionError,))
        assert sleeps == [pytest.approx(1.0), pytest.approx(2.0)]
        assert len(calls) == 3  # far short of the 10-attempt budget

    def test_gives_up_is_checked_before_sleeping(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=8.0, jitter=0.0,
                             max_elapsed=2.0, clock=lambda: 0.0)
        assert not policy.gives_up(started=0.0, next_delay=2.0)  # lands on it
        assert policy.gives_up(started=0.0, next_delay=2.1)  # would cross it
        unbounded = RetryPolicy(jitter=0.0)
        assert not unbounded.gives_up(started=0.0, next_delay=1e9)

    def test_from_config_carries_the_deadline(self):
        assert RetryPolicy.from_config(NetConfig()).max_elapsed is None
        policy = RetryPolicy.from_config(NetConfig(retry_max_elapsed=1.5))
        assert policy.max_elapsed == pytest.approx(1.5)

    def test_net_config_validates_the_knob(self):
        assert NetConfig(retry_max_elapsed=None).retry_max_elapsed is None
        with pytest.raises(ConfigError):
            NetConfig(retry_max_elapsed=0.0)
        with pytest.raises(ConfigError):
            NetConfig(retry_max_elapsed=-1.0)


class TestConnectionPool:
    def test_reuses_idle_connections(self, server):
        metrics = MetricsRegistry()
        pool = ConnectionPool(metrics=metrics)
        addr = server.address
        try:
            for i in range(5):
                assert pool.call(addr, "echo", {"value": i}) == i
            assert metrics.counter("net.connections_opened").value == 1
            assert metrics.counter("rpc.calls").value == 5
            assert pool.idle_connections(addr) == 1
        finally:
            pool.close_all()

    def test_retries_transport_failures_with_backoff(self, server):
        sleeps = []
        metrics = MetricsRegistry()
        policy = RetryPolicy(attempts=3, base_delay=0.1, max_delay=1.0, jitter=0.0,
                             sleep=sleeps.append)
        pool = ConnectionPool(metrics=metrics, policy=policy)
        # First two attempts hit a dead port; then we "repair" by pointing at
        # the live server via a tiny TCP forwarder that comes up mid-retry.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_addr = probe.getsockname()[:2]
        probe.close()

        attempts = []

        def sleep_and_revive(delay):
            sleeps.append(delay)
            if len(sleeps) == 2:
                # Third attempt must succeed: start listening on the dead port.
                revive = RpcServer({"echo": lambda value: value},
                                   host=dead_addr[0], port=dead_addr[1])
                revive.start()
                attempts.append(revive)

        policy.sleep = sleep_and_revive
        try:
            assert pool.call(tuple(dead_addr), "echo", {"value": 42}) == 42
            assert sleeps[:2] == [pytest.approx(0.1), pytest.approx(0.2)]
            assert metrics.counter("rpc.retries").value == 2
        finally:
            pool.close_all()
            for srv in attempts:
                srv.stop()

    def test_gives_up_after_attempts(self):
        sleeps = []
        policy = RetryPolicy(attempts=2, base_delay=0.01, max_delay=0.02, jitter=0.0,
                             sleep=sleeps.append)
        metrics = MetricsRegistry()
        pool = ConnectionPool(metrics=metrics, policy=policy)
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        addr = probe.getsockname()[:2]
        probe.close()
        try:
            with pytest.raises(RpcConnectionError, match=r"after 2 attempt\(s\)"):
                pool.call(tuple(addr), "echo", {"value": 1})
            assert len(sleeps) == 1
            assert metrics.counter("rpc.failures").value == 1
        finally:
            pool.close_all()

    def test_abandons_retries_past_the_elapsed_deadline(self):
        """A backoff the deadline cannot absorb is never slept: the pool
        gives up immediately and counts the abandonment."""
        sleeps = []
        policy = RetryPolicy(attempts=5, base_delay=10.0, max_delay=10.0,
                             jitter=0.0, max_elapsed=0.05, sleep=sleeps.append)
        metrics = MetricsRegistry()
        pool = ConnectionPool(metrics=metrics, policy=policy)
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        addr = probe.getsockname()[:2]
        probe.close()
        try:
            with pytest.raises(RpcConnectionError, match=r"after 1 attempt\(s\)"):
                pool.call(tuple(addr), "echo", {"value": 1})
            assert sleeps == []  # the 10 s backoff was never started
            assert metrics.counter("rpc.retries_abandoned").value == 1
            assert metrics.counter("rpc.retries").value == 0
            assert metrics.counter("rpc.failures").value == 1
        finally:
            pool.close_all()

    def test_timeout_is_not_retried(self, server):
        sleeps = []
        policy = RetryPolicy(attempts=5, base_delay=0.01, max_delay=0.1, jitter=0.0,
                             sleep=sleeps.append)
        pool = ConnectionPool(policy=policy)
        try:
            with pytest.raises(RpcTimeout):
                pool.call(server.address, "slow", {"duration": 5.0}, timeout=0.1)
            assert sleeps == []  # a timed-out call may still execute remotely
        finally:
            pool.close_all()

    def test_remote_error_keeps_connection(self, server):
        metrics = MetricsRegistry()
        pool = ConnectionPool(metrics=metrics)
        try:
            with pytest.raises(RpcRemoteError):
                pool.call(server.address, "boom")
            # The transport is fine; the same connection serves the next call.
            assert pool.call(server.address, "echo", {"value": "ok"}) == "ok"
            assert metrics.counter("net.connections_opened").value == 1
        finally:
            pool.close_all()

    def test_close_address_drops_idle(self, server):
        pool = ConnectionPool()
        try:
            pool.call(server.address, "echo", {"value": 1})
            assert pool.idle_connections(server.address) == 1
            pool.close_address(server.address)
            assert pool.idle_connections(server.address) == 0
        finally:
            pool.close_all()
