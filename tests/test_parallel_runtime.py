"""Tests for the thread-pool parallel runtime."""

import numpy as np
import pytest

from repro.apps.kmeans import kmeans_job
from repro.apps.workloads import pack_records, points, text_corpus
from repro.common.config import CacheConfig, ClusterConfig, DFSConfig, SchedulerConfig
from repro.common.errors import SchedulingError
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.parallel import ParallelEclipseMRRuntime
from repro.mapreduce.runtime import EclipseMRRuntime, FailureInjector

CFG = ClusterConfig(
    num_nodes=6,
    rack_size=3,
    dfs=DFSConfig(block_size=2048),
    cache=CacheConfig(capacity_per_server=1024 * 1024),
    scheduler=SchedulerConfig(window_tasks=8, num_bins=64),
)


def corpus():
    return pack_records(text_corpus(99, num_words=3000, vocab_size=60), CFG.dfs.block_size)


def word_map(block):
    for w in block.decode().split():
        yield w, 1


def wc_job(app_id="wc", **kw):
    return MapReduceJob(app_id=app_id, input_file="t.txt", map_fn=word_map,
                        reduce_fn=lambda w, c: sum(c), **kw)


class TestParallelRuntime:
    def test_matches_sequential_output(self):
        data = corpus()
        seq = EclipseMRRuntime(6, config=CFG)
        seq.upload("t.txt", data)
        par = ParallelEclipseMRRuntime(6, config=CFG, max_workers=4)
        par.upload("t.txt", data)
        r_seq = seq.run(wc_job())
        r_par = par.run(wc_job())
        assert r_par.output == r_seq.output
        assert r_par.stats.map_tasks == r_seq.stats.map_tasks
        assert r_par.stats.tasks_per_server == r_seq.stats.tasks_per_server

    def test_single_worker_pool(self):
        par = ParallelEclipseMRRuntime(6, config=CFG, max_workers=1)
        par.upload("t.txt", corpus())
        result = par.run(wc_job())
        assert sum(result.output.values()) == 3000

    def test_invalid_pool_size(self):
        with pytest.raises(SchedulingError):
            ParallelEclipseMRRuntime(6, config=CFG, max_workers=0)

    def test_icache_reuse_across_jobs(self):
        par = ParallelEclipseMRRuntime(6, config=CFG, max_workers=3)
        par.upload("t.txt", corpus())
        par.run(wc_job("j1"))
        second = par.run(wc_job("j2"))
        assert second.stats.icache_hits == second.stats.map_tasks
        assert second.stats.icache_misses == 0

    def test_intermediate_reuse(self):
        par = ParallelEclipseMRRuntime(6, config=CFG, max_workers=3)
        par.upload("t.txt", corpus())
        first = par.run(wc_job("app", cache_intermediates=True))
        second = par.run(wc_job("app", cache_intermediates=True, reuse_intermediates=True))
        assert second.output == first.output
        assert second.stats.maps_skipped_by_reuse == first.stats.map_tasks

    def test_failure_injection_retries(self):
        injector = FailureInjector({("wc", 0): 2})
        par = ParallelEclipseMRRuntime(6, config=CFG, max_workers=3, failure_injector=injector)
        par.upload("t.txt", corpus())
        result = par.run(wc_job())
        assert result.stats.task_retries == 2
        assert sum(result.output.values()) == 3000

    def test_too_many_failures_raise(self):
        injector = FailureInjector({("wc", 0): 99})
        par = ParallelEclipseMRRuntime(6, config=CFG, max_workers=2, failure_injector=injector)
        par.upload("t.txt", corpus())
        with pytest.raises(SchedulingError, match="failed"):
            par.run(wc_job())

    def test_numpy_heavy_kmeans_runs(self):
        recs, _ = points(77, num_points=400, dim=2, num_clusters=3)
        data = pack_records(recs, CFG.dfs.block_size)
        seq = EclipseMRRuntime(6, config=CFG)
        seq.upload("pts", data)
        par = ParallelEclipseMRRuntime(6, config=CFG, max_workers=4)
        par.upload("pts", data)
        init = np.array([[0.2, 0.2], [0.5, 0.5], [0.8, 0.8]])
        out_seq = seq.run(kmeans_job("pts", init, 0))
        out_par = par.run(kmeans_job("pts", init, 0))
        assert set(out_seq.output) == set(out_par.output)
        for k in out_seq.output:
            assert np.allclose(out_seq.output[k], out_par.output[k])
