"""Property tests for the proactive shuffle and workload packing."""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.apps.workloads import pack_records
from repro.common.hashing import HashSpace
from repro.mapreduce.shuffle import SpillBuffer


@given(
    pairs=st.lists(
        st.tuples(st.text(min_size=1, max_size=6), st.integers(-100, 100)),
        max_size=120,
    ),
    threshold=st.integers(1, 4096),
    n_dests=st.integers(1, 6),
)
@settings(max_examples=80)
def test_every_pair_delivered_exactly_once(pairs, threshold, n_dests):
    """No matter the spill threshold, emit+flush delivers each pair once."""
    space = HashSpace(1 << 24)
    delivered: list[tuple] = []
    buf = SpillBuffer(
        space=space,
        route=lambda k: k % n_dests,
        deliver=lambda dest, sid, p, n: delivered.extend(p),
        threshold_bytes=threshold,
        task_id="t",
    )
    for k, v in pairs:
        buf.emit(k, v)
    buf.flush()
    assert Counter(delivered) == Counter(pairs)
    assert buf.buffered_bytes == 0


@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 50), st.integers(0, 5)), min_size=1, max_size=80
    ),
    threshold=st.integers(1, 512),
)
@settings(max_examples=60)
def test_routing_consistent_per_key(pairs, threshold):
    """Every occurrence of the same key lands at the same destination."""
    space = HashSpace(1 << 24)
    dest_of: dict = {}
    ok = True

    def deliver(dest, sid, batch, nbytes):
        nonlocal ok
        for k, _ in batch:
            if dest_of.setdefault(k, dest) != dest:
                ok = False

    buf = SpillBuffer(space, route=lambda hk: hk % 7, deliver=deliver,
                      threshold_bytes=threshold, task_id="t")
    for k, v in pairs:
        buf.emit(k, v)
    buf.flush()
    assert ok


@given(
    pairs=st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=60),
    threshold=st.integers(1, 256),
)
@settings(max_examples=60)
def test_spill_ids_unique(pairs, threshold):
    space = HashSpace(1 << 24)
    ids = []
    buf = SpillBuffer(space, route=lambda hk: hk % 3,
                      deliver=lambda d, sid, p, n: ids.append(sid),
                      threshold_bytes=threshold, task_id="t")
    for k, v in pairs:
        buf.emit(k, v)
    buf.flush()
    assert len(ids) == len(set(ids))
    assert len(ids) == buf.spills
    assert sorted(ids) == sorted(sid for _, sid, _ in buf.manifest())


@given(
    records=st.lists(
        st.binary(min_size=0, max_size=30).filter(lambda b: b"\n" not in b),
        max_size=60,
    ),
    block_size=st.sampled_from([32, 64, 256]),
)
@settings(max_examples=80)
def test_pack_records_roundtrip_and_alignment(records, block_size):
    records = [r for r in records if len(r) + 1 <= block_size]
    data = pack_records(records, block_size)
    # Exact multiple of the block size, and no record crosses a boundary.
    assert len(data) % block_size == 0
    recovered = []
    for off in range(0, len(data), block_size):
        block = data[off : off + block_size]
        recovered.extend(l for l in block.split(b"\n") if l)
    assert recovered == [r for r in records if r]
