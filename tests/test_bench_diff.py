"""Unit tests for tools/bench_diff.py (the bench-trendline CI helper)."""

import importlib.util
import json
import subprocess
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

spec = importlib.util.spec_from_file_location(
    "bench_diff", ROOT / "tools" / "bench_diff.py"
)
bench_diff = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_diff)


class TestFlatten:
    def test_nested_scalars_get_dotted_keys(self):
        flat = bench_diff.flatten(
            {"a": 1, "b": {"c": 2.5, "d": {"e": 3}}}
        )
        assert flat == {"a": 1.0, "b.c": 2.5, "b.d.e": 3.0}

    def test_non_numeric_and_bool_dropped(self):
        flat = bench_diff.flatten({"quick": False, "note": "x", "n": 7})
        assert flat == {"n": 7.0}

    def test_real_bench_file_flattens(self):
        data = json.loads((ROOT / "BENCH_cluster_dataplane.json").read_text())
        flat = bench_diff.flatten(data)
        assert "pipelining.speedup" in flat
        assert "rpc_latency.p99_us" in flat
        assert all(isinstance(v, float) for v in flat.values())


class TestDirection:
    def test_latency_like_metrics_are_lower_better(self):
        for m in ("rpc_latency.p99_us", "wordcount.wall_clock_s",
                  "pipelining.per_call_device_latency_ms"):
            assert bench_diff.lower_is_better(m)

    def test_rates_are_higher_better(self):
        for m in ("pipelining.speedup", "blocks.fetch_mb_s",
                  "wordcount.words_per_s"):
            assert not bench_diff.lower_is_better(m)

    def test_recovery_costs_are_lower_better(self):
        for m in ("failover.tasks_reexecuted", "failover.blocks_rereplicated",
                  "failover.bytes_rereplicated", "failover.mb_recopied",
                  "job.overhead_pct", "rpc.retries", "rpc.failures",
                  "rereplication.recovery_s"):
            assert bench_diff.lower_is_better(m)
        # ...but recovery *throughput* is still a rate.
        assert not bench_diff.lower_is_better("rereplication.recovery_mb_s")

    def test_scheduler_metrics_are_lower_better(self):
        for m in ("sched.fifo.makespan_s", "sched.fair.fairness_spread_s",
                  "sched.queue_wait_p99_s", "sched.jobs_rejected"):
            assert bench_diff.lower_is_better(m)
        # ...while job throughput stays a rate.
        assert not bench_diff.lower_is_better("sched.jobs_per_s")

    def test_shuffle_reduction_metrics(self):
        # Byte volumes on the wire shrink when compression/combining
        # work; hit rates and achieved reductions grow.
        for m in ("wordcount.wire_bytes", "compression.zlib.wire_bytes",
                  "cross_spill.bytes_shuffled", "eviction.lru.evictions"):
            assert bench_diff.lower_is_better(m)
        for m in ("wordcount.wire_reduction_pct", "eviction.cost.hit_rate",
                  "eviction.cost.hit_ratio", "compression.mb_s_vs_raw"):
            assert not bench_diff.lower_is_better(m)

    def test_elastic_membership_metrics(self):
        # A join should move (and disrupt) as little as possible; the
        # handoff stream itself should be fast.
        for m in ("membership.blocks_handed_off", "membership.bytes_handed_off",
                  "membership.handoff_batches", "join.disruption_p99_ms",
                  "join.disruption_pct"):
            assert bench_diff.lower_is_better(m)
        for m in ("join.handoff_mb_s", "drain.handoff_mb_s"):
            assert not bench_diff.lower_is_better(m)

    def test_straggler_defense_metrics(self):
        # Backup copies, losing attempts, and quarantine churn are
        # wasted work; a win (the copy beating the straggler) is the
        # mechanism doing its job.  The straggler bench's makespan is a
        # duration like any other.
        for m in ("straggler.tasks_speculated", "straggler.speculation_losses",
                  "health.quarantines", "sched.quarantine_reroutes",
                  "straggler.spec_on.makespan_s"):
            assert bench_diff.lower_is_better(m)
        assert not bench_diff.lower_is_better("straggler.speculation_wins")


class TestDiff:
    def test_verdicts(self):
        base = {"lat.p99_us": 100.0, "rate_per_s": 50.0, "gone": 1.0,
                "same": 3.0}
        new = {"lat.p99_us": 120.0, "rate_per_s": 60.0, "fresh": 2.0,
               "same": 3.0}
        rows = {r["metric"]: r for r in bench_diff.diff_metrics(base, new)}
        assert rows["lat.p99_us"]["verdict"] == "worse"  # latency up
        assert rows["rate_per_s"]["verdict"] == "better"  # throughput up
        assert rows["gone"]["verdict"] == "removed"
        assert rows["fresh"]["verdict"] == "added"
        assert rows["same"]["verdict"] == "flat"
        assert rows["rate_per_s"]["pct"] == pytest.approx(20.0)

    def test_render_table_contains_all_metrics(self):
        rows = bench_diff.diff_metrics({"a.b": 1.0}, {"a.b": 2.0, "c": 4.0})
        table = bench_diff.render_table(rows)
        assert "a.b" in table and "c" in table and "+100.0%" in table


class TestSparkline:
    def test_monotone_series_ramps(self):
        line = bench_diff.sparkline([1.0, 2.0, 3.0, 4.0])
        assert line[0] == bench_diff.SPARK_BLOCKS[0]
        assert line[-1] == bench_diff.SPARK_BLOCKS[-1]

    def test_absent_points_are_dots(self):
        assert bench_diff.sparkline([1.0, None, 2.0])[1] == "."

    def test_constant_series(self):
        assert set(bench_diff.sparkline([5.0, 5.0])) == {bench_diff.SPARK_BLOCKS[0]}

    def test_empty(self):
        assert bench_diff.sparkline([None, None]) == ""


class TestMain:
    def test_file_vs_file_diff(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps({"x": {"rate_per_s": 10}}))
        new.write_text(json.dumps({"x": {"rate_per_s": 12}}))
        rc = bench_diff.main([str(new), "--base", str(old), "--new", str(new)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "x.rate_per_s" in out and "better" in out

    def test_max_regression_gates(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps({"rate_per_s": 100}))
        new.write_text(json.dumps({"rate_per_s": 50}))
        rc = bench_diff.main([str(new), "--base", str(old), "--new", str(new),
                              "--max-regression", "10"])
        assert rc == 1
        rc = bench_diff.main([str(new), "--base", str(old), "--new", str(new),
                              "--max-regression", "60"])
        assert rc == 0

    def test_missing_input_is_exit_2(self, tmp_path):
        rc = bench_diff.main([str(tmp_path / "nope.json"),
                              "--base", str(tmp_path / "also-nope.json")])
        assert rc == 2

    def test_against_git_head(self, capsys):
        """The committed bench file diffed against itself: all flat."""
        rc = subprocess.run(
            [  # run from the repo root so HEAD:path resolves
                "python", str(ROOT / "tools" / "bench_diff.py"),
                "BENCH_cluster_dataplane.json",
            ],
            cwd=ROOT, capture_output=True, text=True,
        )
        if "cannot read" in rc.stderr:
            pytest.skip("bench file not committed at HEAD")
        assert rc.returncode == 0
        assert "pipelining.speedup" in rc.stdout
        assert "worse" not in rc.stdout  # worktree == HEAD right now

    def test_history_sparkline(self):
        rc = subprocess.run(
            ["python", str(ROOT / "tools" / "bench_diff.py"),
             "--history", "5", "BENCH_cluster_dataplane.json"],
            cwd=ROOT, capture_output=True, text=True,
        )
        assert rc.returncode == 0
        assert "latest=" in rc.stdout
