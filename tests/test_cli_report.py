"""Tests for the CLI and the text report renderers."""

import pytest

from repro.cli import FIGURES, build_parser, main
from repro.experiments.common import ExperimentResult
from repro.experiments.report import bar_chart, render


class TestReport:
    def _result(self):
        r = ExperimentResult(title="T", x_label="x", x_values=["a", "b"])
        r.add("s1", [10.0, 20.0])
        r.add("s2", [5.0, float("nan")])
        r.note("a note")
        return r

    def test_bar_chart_contains_values_and_notes(self):
        text = bar_chart(self._result())
        assert "T" in text
        assert "20" in text
        assert "a note" in text
        assert "(not measured)" in text

    def test_bar_lengths_proportional(self):
        text = bar_chart(self._result(), width=40)
        lines = {l.split("|")[0].strip(): l.count("#") for l in text.splitlines() if "|" in l}
        # s1 at x=b (20, the peak) gets the full width; s2 at x=a (5) a quarter.
        assert lines  # parsed something
        bars = [l for l in text.splitlines() if "#" in l]
        longest = max(l.count("#") for l in bars)
        shortest = min(l.count("#") for l in bars)
        assert longest == 40
        assert shortest == pytest.approx(10, abs=1)

    def test_render_styles(self):
        r = self._result()
        assert render(r, "table") != render(r, "bars")
        with pytest.raises(ValueError):
            render(r, "pie")

    def test_empty_series_handled(self):
        r = ExperimentResult(title="E", x_label="x", x_values=[1])
        r.add("only-nan", [float("nan")])
        assert "(no data)" in bar_chart(r)


class TestCli:
    def test_parser_accepts_figures(self):
        parser = build_parser()
        for name in FIGURES:
            args = parser.parse_args([name])
            assert args.target == name

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in FIGURES:
            assert name in out

    def test_fig3_runs_end_to_end(self, capsys):
        assert main(["fig3", "--style", "bars"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out
        assert "regenerated in" in out

    def test_invalid_target_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])
