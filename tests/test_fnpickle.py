"""Tests for function shipping (fnpickle).

Functions from installed packages (``repro.*``, ``numpy``) go by
reference; everything else -- lambdas, closures, test-module helpers --
is captured by value (code object + referenced globals + cells) because
worker processes cannot import the test module.
"""

import pickle

import numpy as np
import pytest

from repro.apps.kmeans import kmeans_map_fn
from repro.apps.wordcount import wordcount_map
from repro.cluster.fnpickle import dumps_fn, loads_fn
from repro.common.errors import SerializationError

SCALE = 10


def _helper(x):
    return x * SCALE


def _uses_helper(x):
    return _helper(x) + 1


def _recursive(n):
    if n <= 0:
        return 0
    return n + _recursive(n - 1)


class TestByReference:
    def test_repro_function_ships_by_reference(self):
        clone = loads_fn(dumps_fn(wordcount_map))
        assert clone is wordcount_map

    def test_numpy_function_ships_by_reference(self):
        clone = loads_fn(dumps_fn(np.mean))
        assert clone is np.mean


class TestByValue:
    def test_lambda(self):
        fn = loads_fn(dumps_fn(lambda x: x * 2))
        assert fn(21) == 42

    def test_closure_over_locals(self):
        def make(a, b):
            def add(x):
                return a * x + b

            return add

        fn = loads_fn(dumps_fn(make(3, 4)))
        assert fn(5) == 19

    def test_closure_over_numpy_array(self):
        centroids = np.array([[0.0, 0.0], [10.0, 10.0]])

        def nearest(p):
            return int(np.argmin(np.linalg.norm(centroids - p, axis=1)))

        fn = loads_fn(dumps_fn(nearest))
        assert fn(np.array([9.0, 9.5])) == 1

    def test_kmeans_map_closure_round_trips(self):
        centroids = np.array([[0.0, 0.0], [1.0, 1.0]])
        fn = kmeans_map_fn(centroids)
        clone = loads_fn(dumps_fn(fn))
        block = b"0.1,0.1\n0.9,0.95\n"
        assert list(clone(block)) == list(fn(block))

    def test_test_module_helper_and_its_globals_are_captured(self):
        # _uses_helper references _helper and SCALE from this module,
        # which a worker process cannot import.
        fn = loads_fn(dumps_fn(_uses_helper))
        assert fn(4) == 41

    def test_defaults_preserved(self):
        def f(x, y=7, *, z=3):
            return x + y + z

        fn = loads_fn(dumps_fn(f))
        assert fn(1) == 11
        assert fn(1, y=0, z=0) == 1

    def test_self_recursion(self):
        fn = loads_fn(dumps_fn(_recursive))
        assert fn(4) == 10

    def test_wire_format_is_plain_pickle(self):
        blob = dumps_fn(lambda: "hi")
        assert isinstance(blob, bytes)
        pickle.loads(blob)  # must not require fnpickle to even parse

    def test_plain_data_passes_through(self):
        # Non-callables (e.g. a combiner of None) ride the same channel.
        assert loads_fn(dumps_fn(None)) is None
        assert loads_fn(dumps_fn({"k": 1})) == {"k": 1}

    def test_unserializable_reported(self):
        with pytest.raises(SerializationError):
            dumps_fn((i for i in range(3)))  # a live generator has no code to ship
