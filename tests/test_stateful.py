"""Model-based (stateful) property tests.

Hypothesis drives long random operation sequences against a reference
model; any divergence is shrunk to a minimal failing program.  These
catch interaction bugs that example-based tests structurally cannot.
"""

from collections import OrderedDict

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.cache.lru import LRUCache
from repro.common.errors import CacheMiss
from repro.common.hashing import HashSpace
from repro.dht.ring import ConsistentHashRing


class LRUModel(RuleBasedStateMachine):
    """LRUCache vs a straightforward OrderedDict reference."""

    def __init__(self):
        super().__init__()
        self.capacity = 64
        self.cache = LRUCache(self.capacity)
        self.model: "OrderedDict[int, int]" = OrderedDict()

    def _model_put(self, key, size):
        if size > self.capacity:
            self.model.pop(key, None)
            return
        if key in self.model:
            del self.model[key]
        while sum(self.model.values()) + size > self.capacity and self.model:
            self.model.popitem(last=False)
        self.model[key] = size

    @rule(key=st.integers(0, 9), size=st.integers(0, 80))
    def put(self, key, size):
        self.cache.put(key, f"v{key}", size=size)
        self._model_put(key, size)

    @rule(key=st.integers(0, 9))
    def get(self, key):
        if key in self.model:
            assert self.cache.get(key) == f"v{key}"
            self.model.move_to_end(key)
        else:
            try:
                self.cache.get(key)
                raise AssertionError(f"cache had {key} but model did not")
            except CacheMiss:
                pass

    @rule(key=st.integers(0, 9))
    def pop(self, key):
        entry = self.cache.pop(key)
        expected = self.model.pop(key, None)
        if expected is None:
            assert entry is None
        else:
            assert entry is not None and entry.size == expected

    @invariant()
    def same_contents(self):
        assert set(self.model) == {e.key for e in self.cache.entries()}

    @invariant()
    def used_matches(self):
        assert self.cache.used == sum(self.model.values())
        assert self.cache.used <= self.capacity

    @invariant()
    def lru_order_matches(self):
        assert list(self.model) == [e.key for e in self.cache.entries()]


TestLRUModel = LRUModel.TestCase
TestLRUModel.settings = settings(max_examples=60, stateful_step_count=40)


class RingModel(RuleBasedStateMachine):
    """ConsistentHashRing vs brute-force successor search over positions."""

    SIZE = 4096

    def __init__(self):
        super().__init__()
        self.space = HashSpace(self.SIZE)
        self.ring = ConsistentHashRing(self.space)
        self.positions: dict[str, int] = {}
        self.counter = 0

    @initialize(pos=st.integers(0, SIZE - 1))
    def first_node(self, pos):
        self.ring.add_node("n0", pos)
        self.positions["n0"] = pos
        self.counter = 1

    @rule(pos=st.integers(0, SIZE - 1))
    def add(self, pos):
        if pos in self.positions.values():
            return
        name = f"n{self.counter}"
        self.counter += 1
        self.ring.add_node(name, pos)
        self.positions[name] = pos

    @precondition(lambda self: len(self.positions) > 1)
    @rule(data=st.data())
    def remove(self, data):
        victim = data.draw(st.sampled_from(sorted(self.positions)))
        self.ring.remove_node(victim)
        del self.positions[victim]

    def _expected_owner(self, key: int) -> str:
        """Brute force: the node at the first position strictly > key,
        wrapping to the lowest position."""
        above = [(p, n) for n, p in self.positions.items() if p > key]
        if above:
            return min(above)[1]
        return min((p, n) for n, p in self.positions.items())[1]

    @rule(key=st.integers(0, SIZE - 1))
    def lookup(self, key):
        assert self.ring.owner_of(key) == self._expected_owner(key)

    @invariant()
    def neighbors_consistent(self):
        nodes = self.ring.nodes
        assert nodes == sorted(self.positions, key=self.positions.get)
        for n in nodes:
            assert self.ring.predecessor(self.ring.successor(n)) == n

    @invariant()
    def arcs_partition_space(self):
        total = sum(len(self.ring.range_of(n)) for n in self.ring.nodes)
        assert total == self.SIZE


TestRingModel = RingModel.TestCase
TestRingModel.settings = settings(max_examples=40, stateful_step_count=30)
