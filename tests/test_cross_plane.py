"""Cross-plane validation: the functional engine and the performance
model must agree on timing-independent quantities, and all three
execution planes (sequential, thread-parallel, multi-process cluster)
must produce identical results even when reduce outputs are large
enough to stream on the cluster's wire."""

import pytest

from repro.cluster import ClusterRuntime
from repro.common.config import CacheConfig, ClusterConfig, DFSConfig, NetConfig
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.parallel import ParallelEclipseMRRuntime
from repro.mapreduce.runtime import EclipseMRRuntime
from repro.perfmodel.validation import compare_planes


class TestCrossPlane:
    @pytest.fixture(scope="class")
    def comparison(self):
        return compare_planes(num_workers=8, blocks=24, repeats=3)

    def test_hit_ratios_agree(self, comparison):
        """Repeated scans of a fully cache-resident dataset: after the cold
        first scan, everything hits.  Both planes should land near
        (repeats-1)/repeats = 2/3."""
        assert comparison.functional_hit_ratio == pytest.approx(2 / 3, abs=0.05)
        assert comparison.simulated_hit_ratio == pytest.approx(2 / 3, abs=0.05)
        assert comparison.hit_ratio_gap < 0.05

    def test_assignment_spread_agrees(self, comparison):
        """With identical ring positions, block keys and scheduler config,
        the two planes make the *same* assignment sequence: the spread
        matches exactly."""
        assert comparison.cv_gap < 1e-9

    def test_repartition_counts_agree(self, comparison):
        """Same window size, same task count -> same number of re-cuts."""
        assert comparison.functional_repartitions == comparison.simulated_repartitions

    def test_delay_scheduler_plane_agreement(self):
        cmp = compare_planes(num_workers=6, blocks=18, repeats=2, scheduler="delay")
        assert cmp.functional_hit_ratio == pytest.approx(0.5, abs=0.06)
        assert cmp.simulated_hit_ratio == pytest.approx(0.5, abs=0.06)


class TestThreePlaneStreaming:
    """The same big-output wordcount on every execution plane.

    The cluster plane's frame limit is shrunk so each worker's reduce
    output *must* take the paged streaming path; the sequential and
    thread-parallel planes have no wire at all.  All three answers must
    be identical -- the transport is invisible to results.
    """

    CFG = ClusterConfig(
        dfs=DFSConfig(block_size=2048),
        net=NetConfig(max_frame_bytes=16 * 1024, stream_page_bytes=1024),
    )

    @staticmethod
    def corpus() -> bytes:
        words = [f"planeword-{i:05d}-{'y' * 12}" for i in range(3000)]
        return " ".join(words[i % len(words)] for i in range(6000)).encode()

    @staticmethod
    def job(app_id: str) -> MapReduceJob:
        def wc_map(block):
            for token in bytes(block).decode().split():
                yield token, 1

        def wc_reduce(key, values):
            return sum(values)

        return MapReduceJob(app_id=app_id, input_file="planes.txt",
                            map_fn=wc_map, reduce_fn=wc_reduce)

    def test_all_planes_agree_on_streamed_output(self):
        data = self.corpus()

        seq = EclipseMRRuntime(3, config=self.CFG)
        seq.upload("planes.txt", data)
        ref = seq.run(self.job("planes-seq"))

        par = ParallelEclipseMRRuntime(3, config=self.CFG, max_workers=4)
        par.upload("planes.txt", data)
        threaded = par.run(self.job("planes-par"))

        with ClusterRuntime(3, self.CFG) as rt:
            rt.upload("planes.txt", data)
            clustered = rt.run(self.job("planes-cluster"))
            streamed = rt.metrics.counter("rpc.streams_completed").value

        assert threaded.output == ref.output
        assert clustered.output == ref.output
        assert threaded.stats.tasks_per_server == ref.stats.tasks_per_server
        assert clustered.stats.tasks_per_server == ref.stats.tasks_per_server
        assert streamed >= 1  # the cluster plane really streamed


class TestThreePlaneIntermediateReuse:
    """The same cached-then-replayed wordcount on every execution plane.

    Each plane runs the job twice with ``cache_intermediates`` and
    ``reuse_intermediates`` on: the first run maps normally and tags its
    spills; the second must skip *every* map, replay the shuffle from
    oCache / persisted spill objects, and agree with the others on both
    the output and the replayed shuffle accounting.
    """

    CFG = ClusterConfig(dfs=DFSConfig(block_size=2048))

    @staticmethod
    def corpus() -> bytes:
        from repro.apps.workloads import pack_records, text_corpus

        return pack_records(text_corpus(11, num_words=2400, vocab_size=40), 2048)

    @staticmethod
    def job(app_id: str) -> MapReduceJob:
        def wc_map(block):
            for token in bytes(block).decode().split():
                yield token, 1

        def wc_reduce(key, values):
            return sum(values)

        return MapReduceJob(app_id=app_id, input_file="reuse.txt",
                            map_fn=wc_map, reduce_fn=wc_reduce,
                            cache_intermediates=True,
                            reuse_intermediates=True)

    def test_all_planes_agree_on_replayed_run(self):
        data = self.corpus()

        seq = EclipseMRRuntime(3, config=self.CFG)
        seq.upload("reuse.txt", data)
        seq_first = seq.run(self.job("planes-reuse"))
        seq_second = seq.run(self.job("planes-reuse"))

        par = ParallelEclipseMRRuntime(3, config=self.CFG, max_workers=4)
        par.upload("reuse.txt", data)
        par.run(self.job("planes-reuse"))
        par_second = par.run(self.job("planes-reuse"))

        with ClusterRuntime(3, self.CFG) as rt:
            rt.upload("reuse.txt", data)
            cl_first = rt.run(self.job("planes-reuse"))
            cl_second = rt.run(self.job("planes-reuse"))

        blocks = seq_first.stats.map_tasks
        assert blocks > 1
        assert cl_first.output == seq_first.output
        for second in (seq_second, par_second, cl_second):
            assert second.output == seq_first.output
            assert second.stats.maps_skipped_by_reuse == blocks
            assert second.stats.map_tasks == 0
        # The replayed shuffle's accounting matches the original run's
        # (and therefore each other's) on every plane.
        assert seq_second.stats.spills == seq_first.stats.spills > 0
        assert cl_second.stats.spills == seq_second.stats.spills
        assert par_second.stats.spills == seq_second.stats.spills
        assert cl_second.stats.bytes_shuffled == seq_second.stats.bytes_shuffled > 0
        assert par_second.stats.bytes_shuffled == seq_second.stats.bytes_shuffled
        assert par_second.stats.tasks_per_server == seq_second.stats.tasks_per_server
        assert cl_second.stats.tasks_per_server == seq_second.stats.tasks_per_server


class TestThreePlaneElasticMembership:
    """Elastic membership must be invisible to results on every plane.

    A job, a live join, then the identical job again: the second run has
    to be bit-equal across the sequential, thread-parallel, and
    multi-process planes.  And an *idle* join or drain followed by a job
    must be bit-equal to a fresh cluster of the resulting size -- the
    pristine hash key table re-seeds from the post-change ring exactly as
    a fresh construction would.
    """

    CFG = ClusterConfig(dfs=DFSConfig(block_size=2048))

    @staticmethod
    def corpus() -> bytes:
        from repro.apps.workloads import pack_records, text_corpus

        return pack_records(text_corpus(23, num_words=2400, vocab_size=50), 2048)

    @staticmethod
    def job(app_id: str) -> MapReduceJob:
        def wc_map(block):
            for token in bytes(block).decode().split():
                yield token, 1

        def wc_reduce(key, values):
            return sum(values)

        return MapReduceJob(app_id=app_id, input_file="elastic.txt",
                            map_fn=wc_map, reduce_fn=wc_reduce)

    def test_join_then_rerun_agrees_across_planes(self):
        data = self.corpus()

        seq = EclipseMRRuntime(3, config=self.CFG)
        seq.upload("elastic.txt", data)
        seq_first = seq.run(self.job("elastic-seq"))
        assert seq.join_worker() == "worker-3"
        seq_second = seq.run(self.job("elastic-seq-2"))

        par = ParallelEclipseMRRuntime(3, config=self.CFG, max_workers=4)
        par.upload("elastic.txt", data)
        par_first = par.run(self.job("elastic-par"))
        assert par.join_worker() == "worker-3"
        par_second = par.run(self.job("elastic-par-2"))

        with ClusterRuntime(3, self.CFG) as rt:
            rt.upload("elastic.txt", data)
            cl_first = rt.run(self.job("elastic-cl"))
            assert rt.join_worker() == "worker-3"
            handed = rt.metrics.counter("membership.blocks_handed_off").value
            cl_second = rt.run(self.job("elastic-cl-2"))

        assert handed > 0  # the cluster join really streamed blocks
        for first in (par_first, cl_first):
            assert first.output == seq_first.output
            assert first.stats.tasks_per_server == seq_first.stats.tasks_per_server
        # The post-join re-run is bit-equal plane to plane: same outputs,
        # same placement over the *grown* worker set, same shuffle volume.
        assert seq_second.output == seq_first.output
        for second in (par_second, cl_second):
            assert second.output == seq_second.output
            assert second.stats.tasks_per_server == \
                seq_second.stats.tasks_per_server
            assert second.stats.spills == seq_second.stats.spills
            assert second.stats.bytes_shuffled == seq_second.stats.bytes_shuffled
        assert "worker-3" in seq_second.stats.tasks_per_server

    def test_idle_join_matches_a_fresh_cluster(self):
        """Join before any data exists: placement, hash key table, and
        therefore the whole job must be byte-identical to a fresh
        4-worker cluster."""
        data = self.corpus()

        fresh = EclipseMRRuntime(4, config=self.CFG)
        fresh.upload("elastic.txt", data)
        ref = fresh.run(self.job("elastic-fresh4"))

        grown = EclipseMRRuntime(3, config=self.CFG)
        assert grown.join_worker() == "worker-3"
        grown.upload("elastic.txt", data)
        res = grown.run(self.job("elastic-grown4"))
        assert res.output == ref.output
        assert res.stats == ref.stats

        with ClusterRuntime(3, self.CFG) as rt:
            assert rt.join_worker() == "worker-3"
            rt.upload("elastic.txt", data)
            cl = rt.run(self.job("elastic-cl-grown4"))
        assert cl.output == ref.output
        assert cl.stats == ref.stats

    def test_idle_drain_matches_a_fresh_cluster(self):
        """Drain on an idle (but loaded) cluster, then run: bit-equal to a
        fresh cluster built from the surviving ids.  The drain handoff
        restored full replication first, so even block reads match."""
        data = self.corpus()

        fresh = EclipseMRRuntime(["worker-0", "worker-2"], config=self.CFG)
        fresh.upload("elastic.txt", data)
        ref = fresh.run(self.job("elastic-fresh2"))

        shrunk = EclipseMRRuntime(3, config=self.CFG)
        shrunk.upload("elastic.txt", data)
        shrunk.drain_worker("worker-1")
        res = shrunk.run(self.job("elastic-shrunk2"))
        assert res.output == ref.output
        assert res.stats == ref.stats

        with ClusterRuntime(3, self.CFG) as rt:
            rt.upload("elastic.txt", data)
            rt.drain_worker("worker-1")
            assert rt.metrics.counter("cluster.failovers").value == 0
            cl = rt.run(self.job("elastic-cl-shrunk2"))
        assert cl.output == ref.output
        assert cl.stats == ref.stats


class TestThreePlaneCompressedShuffle:
    """Wordcount with every new knob on: wire compression, cross-spill
    combining, and cost-aware eviction.

    Compression and eviction policy are transport/cache concerns and must
    be invisible to results; cross-spill combining changes the shuffle
    volume but must change it *identically* on every plane -- same
    outputs, same spill counts, same ``bytes_shuffled``.
    """

    CFG = ClusterConfig(
        dfs=DFSConfig(block_size=2048),
        net=NetConfig(compression="zlib", compression_min_bytes=64),
        cache=CacheConfig(eviction="cost"),
    )

    @staticmethod
    def corpus() -> bytes:
        # A small vocabulary repeated many times: highly compressible on
        # the wire, and rich in duplicate keys for the combiner.
        words = [f"combword-{i:03d}" for i in range(50)]
        return " ".join(words[i % len(words)] for i in range(8000)).encode()

    @staticmethod
    def job(app_id: str) -> MapReduceJob:
        def wc_map(block):
            for token in bytes(block).decode().split():
                yield token, 1

        def wc_reduce(key, values):
            return sum(values)

        def wc_combine(key, values):
            return [sum(values)]

        return MapReduceJob(app_id=app_id, input_file="comb.txt",
                            map_fn=wc_map, reduce_fn=wc_reduce,
                            combiner=wc_combine,
                            cross_spill_combine=True,
                            spill_buffer_bytes=1024)

    def test_all_planes_agree_with_every_knob_on(self):
        data = self.corpus()

        seq = EclipseMRRuntime(3, config=self.CFG)
        seq.upload("comb.txt", data)
        ref = seq.run(self.job("planes-comb-seq"))

        par = ParallelEclipseMRRuntime(3, config=self.CFG, max_workers=4)
        par.upload("comb.txt", data)
        threaded = par.run(self.job("planes-comb-par"))

        with ClusterRuntime(3, self.CFG) as rt:
            rt.upload("comb.txt", data)
            clustered = rt.run(self.job("planes-comb-cluster"))
            worker_stats = rt.worker_stats()
            compressed = sum(s.get("net.pages_compressed", 0)
                             for s in worker_stats.values())
            compressed += rt.metrics.counter("net.pages_compressed").value

        assert threaded.output == ref.output
        assert clustered.output == ref.output
        # Identical post-combining shuffle accounting on every plane.
        assert ref.stats.spill_recombines > 0
        assert threaded.stats.spill_recombines == ref.stats.spill_recombines
        assert clustered.stats.spill_recombines == ref.stats.spill_recombines
        assert threaded.stats.spills == ref.stats.spills
        assert clustered.stats.spills == ref.stats.spills
        assert threaded.stats.bytes_shuffled == ref.stats.bytes_shuffled > 0
        assert clustered.stats.bytes_shuffled == ref.stats.bytes_shuffled
        assert threaded.stats.tasks_per_server == ref.stats.tasks_per_server
        assert clustered.stats.tasks_per_server == ref.stats.tasks_per_server
        # The cluster plane really compressed pages somewhere on the path.
        assert compressed >= 1

    def test_cross_spill_combining_shrinks_the_shuffle(self):
        data = self.corpus()
        base_cfg = ClusterConfig(dfs=DFSConfig(block_size=2048))

        def run(cross_spill):
            rt = EclipseMRRuntime(3, config=base_cfg)
            rt.upload("comb.txt", data)
            job = self.job("planes-comb-off")
            job.cross_spill_combine = cross_spill
            return rt.run(job)

        off = run(False)
        on = run(True)
        assert on.output == off.output
        assert on.stats.bytes_shuffled < off.stats.bytes_shuffled
