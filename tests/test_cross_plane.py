"""Cross-plane validation: the functional engine and the performance
model must agree on timing-independent quantities."""

import pytest

from repro.perfmodel.validation import compare_planes


class TestCrossPlane:
    @pytest.fixture(scope="class")
    def comparison(self):
        return compare_planes(num_workers=8, blocks=24, repeats=3)

    def test_hit_ratios_agree(self, comparison):
        """Repeated scans of a fully cache-resident dataset: after the cold
        first scan, everything hits.  Both planes should land near
        (repeats-1)/repeats = 2/3."""
        assert comparison.functional_hit_ratio == pytest.approx(2 / 3, abs=0.05)
        assert comparison.simulated_hit_ratio == pytest.approx(2 / 3, abs=0.05)
        assert comparison.hit_ratio_gap < 0.05

    def test_assignment_spread_agrees(self, comparison):
        """With identical ring positions, block keys and scheduler config,
        the two planes make the *same* assignment sequence: the spread
        matches exactly."""
        assert comparison.cv_gap < 1e-9

    def test_repartition_counts_agree(self, comparison):
        """Same window size, same task count -> same number of re-cuts."""
        assert comparison.functional_repartitions == comparison.simulated_repartitions

    def test_delay_scheduler_plane_agreement(self):
        cmp = compare_planes(num_workers=6, blocks=18, repeats=2, scheduler="delay")
        assert cmp.functional_hit_ratio == pytest.approx(0.5, abs=0.06)
        assert cmp.simulated_hit_ratio == pytest.approx(0.5, abs=0.06)
