"""Tests for Resource, PriorityResource, Store, Container."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.engine import Simulation
from repro.sim.resources import Container, PriorityResource, Resource, Store


class TestResource:
    def test_capacity_validation(self):
        sim = Simulation()
        with pytest.raises(SimulationError):
            Resource(sim, 0)

    def test_grant_up_to_capacity_then_queue(self):
        sim = Simulation()
        res = Resource(sim, capacity=2)
        r1, r2, r3 = res.request(), res.request(), res.request()
        assert r1.triggered and r2.triggered and not r3.triggered
        assert res.in_use == 2 and res.queue_length == 1
        res.release(r1)
        assert r3.triggered
        assert res.in_use == 2 and res.queue_length == 0

    def test_fifo_order(self):
        sim = Simulation()
        res = Resource(sim, capacity=1)
        order = []

        def worker(sim, res, tag, hold):
            req = res.request()
            yield req
            order.append(tag)
            yield sim.timeout(hold)
            res.release(req)

        for tag in "abcd":
            sim.process(worker(sim, res, tag, 1.0))
        sim.run()
        assert order == ["a", "b", "c", "d"]

    def test_release_ungranted_rejected(self):
        sim = Simulation()
        res = Resource(sim, capacity=1)
        res.request()
        queued = res.request()
        with pytest.raises(SimulationError):
            res.release(queued)

    def test_release_foreign_request_rejected(self):
        sim = Simulation()
        res1, res2 = Resource(sim), Resource(sim)
        req = res1.request()
        with pytest.raises(SimulationError):
            res2.release(req)

    def test_cancel_queued_request(self):
        sim = Simulation()
        res = Resource(sim, capacity=1)
        held = res.request()
        queued = res.request()
        res.cancel(queued)
        assert res.queue_length == 0
        res.release(held)
        assert not queued.triggered  # cancelled request never granted

    def test_cancel_granted_request_releases(self):
        sim = Simulation()
        res = Resource(sim, capacity=1)
        held = res.request()
        waiting = res.request()
        res.cancel(held)
        assert waiting.triggered

    def test_cancel_twice_is_noop(self):
        sim = Simulation()
        res = Resource(sim, capacity=1)
        res.request()
        queued = res.request()
        res.cancel(queued)
        res.cancel(queued)


class TestPriorityResource:
    def test_lower_priority_value_first(self):
        sim = Simulation()
        res = PriorityResource(sim, capacity=1)
        held = res.request(priority=0)
        low = res.request(priority=10)
        high = res.request(priority=1)
        res.release(held)
        assert high.triggered and not low.triggered
        res.release(high)
        assert low.triggered

    def test_fifo_within_priority(self):
        sim = Simulation()
        res = PriorityResource(sim, capacity=1)
        held = res.request()
        first = res.request(priority=5)
        second = res.request(priority=5)
        res.release(held)
        assert first.triggered and not second.triggered

    def test_cancel_queued(self):
        sim = Simulation()
        res = PriorityResource(sim, capacity=1)
        held = res.request()
        queued = res.request(priority=1)
        res.cancel(queued)
        res.release(held)
        assert not queued.triggered


class TestStore:
    def test_put_then_get(self):
        sim = Simulation()
        store = Store(sim)
        store.put("x")
        ev = store.get()
        assert ev.triggered and ev.value == "x"

    def test_get_blocks_until_put(self):
        sim = Simulation()
        store = Store(sim)
        got = []

        def consumer(sim, store):
            item = yield store.get()
            got.append((sim.now, item))

        def producer(sim, store):
            yield sim.timeout(2)
            store.put("late")

        sim.process(consumer(sim, store))
        sim.process(producer(sim, store))
        sim.run()
        assert got == [(2.0, "late")]

    def test_fifo_items_and_getters(self):
        sim = Simulation()
        store = Store(sim)
        g1, g2 = store.get(), store.get()
        store.put(1)
        store.put(2)
        assert g1.value == 1 and g2.value == 2

    def test_try_get(self):
        sim = Simulation()
        store = Store(sim)
        assert store.try_get() == (False, None)
        store.put(9)
        assert store.try_get() == (True, 9)
        assert len(store) == 0


class TestContainer:
    def test_validation(self):
        sim = Simulation()
        with pytest.raises(SimulationError):
            Container(sim, 0)
        with pytest.raises(SimulationError):
            Container(sim, 10, init=11)

    def test_get_when_available(self):
        sim = Simulation()
        c = Container(sim, 100, init=50)
        ev = c.get(30)
        assert ev.triggered
        assert c.level == 20

    def test_get_blocks_until_put(self):
        sim = Simulation()
        c = Container(sim, 100, init=0)
        ev = c.get(60)
        assert not ev.triggered
        c.put(30)
        assert not ev.triggered
        c.put(40)
        assert ev.triggered
        assert c.level == pytest.approx(10)

    def test_put_clamps_at_capacity(self):
        sim = Simulation()
        c = Container(sim, 100, init=90)
        c.put(50)
        assert c.level == 100

    def test_fifo_getters(self):
        sim = Simulation()
        c = Container(sim, 100)
        big = c.get(80)
        small = c.get(10)
        c.put(50)
        # FIFO: the big request blocks the small one behind it.
        assert not big.triggered and not small.triggered
        c.put(40)
        assert big.triggered and small.triggered

    def test_get_more_than_capacity_rejected(self):
        sim = Simulation()
        c = Container(sim, 100)
        with pytest.raises(SimulationError):
            c.get(101)
