"""Tests for the DHT file system: placement, reads, permissions, recovery."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import DFSConfig
from repro.common.errors import (
    BlockNotFound,
    FileNotFound,
    FileSystemError,
    PermissionDenied,
)
from repro.common.hashing import HashSpace
from repro.dfs.blocks import Block, BlockId, BlockStore
from repro.dfs.fault import recover_from_failure
from repro.dfs.filesystem import DHTFileSystem
from repro.dfs.metadata import FileMetadata


def make_fs(n=6, block_size=64, replication=2, size=1 << 20):
    cfg = DFSConfig(block_size=block_size, replication=replication)
    return DHTFileSystem([f"s{i}" for i in range(n)], cfg, HashSpace(size))


class TestBlockStore:
    def test_put_get_primary(self):
        store = BlockStore("s0")
        b = Block(BlockId("f", 0), key=5, size=3, data=b"abc")
        store.put(b)
        assert store.get(BlockId("f", 0)) is b
        assert store.has_primary(BlockId("f", 0))

    def test_replica_does_not_shadow_primary(self):
        store = BlockStore("s0")
        b = Block(BlockId("f", 0), key=5, size=3, data=b"abc")
        store.put(b)
        store.put(b, replica=True)
        assert store.has_primary(BlockId("f", 0))
        assert not store.has_replica(BlockId("f", 0))

    def test_primary_supersedes_replica(self):
        store = BlockStore("s0")
        b = Block(BlockId("f", 0), key=5, size=3, data=b"abc")
        store.put(b, replica=True)
        store.put(b)
        assert store.has_primary(BlockId("f", 0))
        assert not store.has_replica(BlockId("f", 0))

    def test_promote(self):
        store = BlockStore("s0")
        b = Block(BlockId("f", 0), key=5, size=3, data=b"abc")
        store.put(b, replica=True)
        store.promote(BlockId("f", 0))
        assert store.has_primary(BlockId("f", 0))

    def test_promote_missing_rejected(self):
        store = BlockStore("s0")
        with pytest.raises(BlockNotFound):
            store.promote(BlockId("f", 0))

    def test_byte_accounting(self):
        store = BlockStore("s0")
        store.put(Block(BlockId("f", 0), key=1, size=10))
        store.put(Block(BlockId("f", 1), key=2, size=20), replica=True)
        assert store.primary_bytes == 10
        assert store.replica_bytes == 20

    def test_block_payload_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Block(BlockId("f", 0), key=1, size=5, data=b"abc")


class TestMetadata:
    def test_owner_can_read_and_write(self):
        meta = FileMetadata("f", owner="alice", size=10, permissions=0o644)
        meta.check_access("alice")
        meta.check_access("alice", write=True)

    def test_other_read_only_with_644(self):
        meta = FileMetadata("f", owner="alice", size=10, permissions=0o644)
        meta.check_access("bob")
        with pytest.raises(PermissionDenied):
            meta.check_access("bob", write=True)

    def test_private_file(self):
        meta = FileMetadata("f", owner="alice", size=10, permissions=0o600)
        with pytest.raises(PermissionDenied):
            meta.check_access("bob")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            FileMetadata("", owner="a", size=1)


class TestUploadAndRead:
    def test_roundtrip(self):
        fs = make_fs()
        data = bytes(range(256)) * 3
        fs.upload("input.txt", data)
        assert fs.read("input.txt") == data

    def test_partitioning_into_blocks(self):
        fs = make_fs(block_size=64)
        data = b"x" * 200
        meta = fs.upload("f", data)
        assert meta.num_blocks == 4  # 64+64+64+8
        assert [d.size for d in meta.blocks] == [64, 64, 64, 8]
        assert meta.size == 200

    def test_exact_multiple_of_block_size(self):
        fs = make_fs(block_size=64)
        meta = fs.upload("f", b"y" * 128)
        assert meta.num_blocks == 2

    def test_empty_file(self):
        fs = make_fs()
        meta = fs.upload("empty", b"")
        assert meta.size == 0
        assert fs.read("empty") == b""

    def test_size_only_upload(self):
        fs = make_fs(block_size=64)
        meta = fs.upload("big", size=1000)
        assert meta.num_blocks == 16
        with pytest.raises(FileSystemError):
            fs.read("big")

    def test_both_data_and_size_rejected(self):
        fs = make_fs()
        with pytest.raises(FileSystemError):
            fs.upload("f", b"abc", size=3)
        with pytest.raises(FileSystemError):
            fs.upload("f")

    def test_duplicate_name_rejected(self):
        fs = make_fs()
        fs.upload("f", b"abc")
        with pytest.raises(FileSystemError):
            fs.upload("f", b"def")

    def test_missing_file(self):
        fs = make_fs()
        with pytest.raises(FileNotFound):
            fs.stat("ghost")
        assert not fs.exists("ghost")

    def test_read_block_bounds(self):
        fs = make_fs(block_size=64)
        fs.upload("f", b"z" * 100)
        with pytest.raises(BlockNotFound):
            fs.read_block("f", 2)

    def test_metadata_owner_is_ring_owner_of_name_hash(self):
        fs = make_fs()
        fs.upload("somefile", b"abc")
        owner = fs.metadata_owner("somefile")
        assert "somefile" in fs.servers[owner].metadata

    def test_permissions_enforced_on_read(self):
        fs = make_fs()
        fs.upload("secret", b"abc", owner="alice", permissions=0o600)
        assert fs.read("secret", user="alice") == b"abc"
        with pytest.raises(PermissionDenied):
            fs.read("secret", user="bob")

    def test_delete(self):
        fs = make_fs()
        fs.upload("f", b"abc")
        fs.delete("f")
        assert not fs.exists("f")
        for server in fs.servers.values():
            assert len(server.blocks) == 0

    def test_delete_requires_write_permission(self):
        fs = make_fs()
        fs.upload("f", b"abc", owner="alice", permissions=0o644)
        with pytest.raises(PermissionDenied):
            fs.delete("f", user="bob")

    def test_list_files(self):
        fs = make_fs()
        fs.upload("b", b"1")
        fs.upload("a", b"2")
        assert fs.list_files() == ["a", "b"]


class TestPlacement:
    def test_block_primary_on_ring_owner(self):
        fs = make_fs(block_size=64)
        fs.upload("f", b"q" * 300)
        for desc, holders in fs.block_locations("f"):
            owner = fs.ring.owner_of(desc.key)
            assert fs.servers[owner].blocks.has_primary(BlockId("f", desc.index))
            assert owner in holders

    def test_replicas_on_neighbors(self):
        fs = make_fs(n=6, block_size=64, replication=2)
        fs.upload("f", b"q" * 300)
        for desc, holders in fs.block_locations("f"):
            owner = fs.ring.owner_of(desc.key)
            expected = set(fs.ring.replica_set(desc.key, extra=2))
            assert set(holders) == expected
            assert len(holders) == 3  # owner + pred + succ on a 6-node ring

    def test_replication_zero(self):
        fs = make_fs(n=6, block_size=64, replication=0)
        fs.upload("f", b"q" * 300)
        for _, holders in fs.block_locations("f"):
            assert len(holders) == 1

    def test_blocks_spread_across_servers(self):
        """The DHT FS resolves input block skew by hashing blocks across
        the ring (paper §II-A), so a large file should not pile onto one
        server."""
        fs = make_fs(n=6, block_size=64)
        fs.upload("big", size=64 * 120)  # 120 blocks
        counts = [
            sum(1 for _ in srv.blocks.primaries()) for srv in fs.servers.values()
        ]
        assert max(counts) < 120  # not all on one server
        assert sum(counts) == 120
        assert sum(1 for c in counts if c > 0) >= 3


class TestFailureRecovery:
    def test_read_survives_single_failure(self):
        fs = make_fs(n=6, block_size=64)
        data = b"payload" * 40
        fs.upload("f", data)
        victim = fs.block_owner("f", 0)
        report = recover_from_failure(fs, victim)
        assert report.fully_recovered
        assert fs.read("f") == data

    def test_recovery_restores_replication_invariants(self):
        fs = make_fs(n=6, block_size=64)
        fs.upload("f", b"payload" * 40)
        victim = list(fs.servers)[0]
        recover_from_failure(fs, victim)
        # After repair every block again sits on owner + pred + succ.
        for desc, holders in fs.block_locations("f"):
            assert set(holders) == set(fs.ring.replica_set(desc.key, extra=2))

    def test_sequential_failures_until_minimum(self):
        fs = make_fs(n=6, block_size=64)
        data = b"abcdef" * 64
        fs.upload("f", data)
        for _ in range(3):  # kill half the cluster one at a time
            victim = list(fs.servers)[0]
            report = recover_from_failure(fs, victim)
            assert report.fully_recovered
            assert fs.read("f") == data

    def test_unreplicated_data_is_lost(self):
        fs = make_fs(n=6, block_size=64, replication=0)
        fs.upload("f", b"x" * 300)
        victim = fs.block_owner("f", 0)
        report = recover_from_failure(fs, victim)
        assert not report.fully_recovered
        assert BlockId("f", 0) in report.lost_blocks

    def test_metadata_owner_failure(self):
        fs = make_fs(n=6, block_size=64)
        fs.upload("f", b"x" * 100)
        victim = fs.metadata_owner("f")
        report = recover_from_failure(fs, victim)
        assert report.fully_recovered
        assert fs.exists("f")
        new_owner = fs.metadata_owner("f")
        assert "f" in fs.servers[new_owner].metadata

    def test_join_after_upload_does_not_break_reads(self):
        fs = make_fs(n=4, block_size=64)
        data = b"j" * 500
        fs.upload("f", data)
        fs.add_server("late", position=12345)
        # Reads fall back across the replica set even though ownership moved.
        assert fs.read("f") == data


@given(
    payload=st.binary(min_size=0, max_size=2048),
    n_servers=st.integers(2, 10),
    block_size=st.sampled_from([32, 64, 128, 1024]),
)
@settings(max_examples=50)
def test_roundtrip_property(payload, n_servers, block_size):
    fs = DHTFileSystem(
        [f"s{i}" for i in range(n_servers)],
        DFSConfig(block_size=block_size),
        HashSpace(1 << 24),
    )
    meta = fs.upload("f", payload)
    assert fs.read("f") == payload
    expected_blocks = max(1, -(-len(payload) // block_size))
    assert meta.num_blocks == expected_blocks


@given(
    n_servers=st.integers(3, 8),
    kills=st.integers(1, 2),
    seed=st.integers(0, 1000),
)
@settings(max_examples=30)
def test_recovery_property(n_servers, kills, seed):
    """Any sequence of single failures with repair in between loses nothing."""
    import random

    rng = random.Random(seed)
    fs = DHTFileSystem(
        [f"s{i}" for i in range(n_servers)],
        DFSConfig(block_size=64, replication=2),
        HashSpace(1 << 24),
    )
    data = bytes(rng.getrandbits(8) for _ in range(700))
    fs.upload("f", data)
    for _ in range(min(kills, n_servers - 1)):
        victim = rng.choice(list(fs.servers))
        report = recover_from_failure(fs, victim)
        assert report.fully_recovered
        assert fs.read("f") == data
