"""Unit tests for the engine's three shuffle transports."""

import pytest

from repro.common.config import CacheConfig, ClusterConfig, DFSConfig, SchedulerConfig
from repro.common.units import GB, MB
from repro.perfmodel.engine import PerfEngine, SimJobSpec
from repro.perfmodel.framework import eclipse_framework, hadoop_framework, spark_framework
from repro.perfmodel.placement import dht_layout
from repro.perfmodel.profiles import APP_PROFILES
from dataclasses import replace


def build(framework, nodes=4):
    config = ClusterConfig(
        num_nodes=nodes,
        rack_size=2,
        map_slots_per_node=2,
        reduce_slots_per_node=2,
        dfs=DFSConfig(block_size=128 * MB),
        cache=CacheConfig(capacity_per_server=1 * GB, icache_fraction=1.0),
        scheduler=SchedulerConfig(window_tasks=16),
        page_cache_per_node=1 * GB,
    )
    engine = PerfEngine(config, framework)
    layout = dht_layout(engine.space, engine.ring, "in", 8, 128 * MB)
    return engine, SimJobSpec(app=APP_PROFILES["sort"], tasks=layout, label="sort")


class TestShuffleTransports:
    def test_proactive_moves_bytes_during_map(self):
        engine, spec = build(eclipse_framework())
        timing = engine.run_job(spec)
        # Every input byte became an intermediate byte (sort ratio 1.0).
        assert timing.bytes_shuffled == pytest.approx(spec.input_bytes)
        # Proactive pushes land on destination disks.
        shuffle_writes = sum(n.disk.bytes_written for n in engine.cluster.nodes)
        assert shuffle_writes > 0

    def test_pull_writes_mapper_side_spills(self):
        engine, spec = build(hadoop_framework())
        timing = engine.run_job(spec)
        assert timing.bytes_shuffled == pytest.approx(spec.input_bytes)
        # The disk-backed pull re-reads spilled map output before shipping.
        reads = sum(n.disk.bytes_read for n in engine.cluster.nodes)
        assert reads >= spec.input_bytes * 2 * 0.9  # input + spill re-read

    def test_memory_mode_skips_shuffle_disks(self):
        engine, spec = build(spark_framework())
        engine.run_job(spec)
        writes = sum(n.disk.bytes_written for n in engine.cluster.nodes)
        # Only the final output touches disks (Spark replication copies).
        expected_final = spec.input_bytes * spark_framework().replication
        assert writes <= expected_final * 1.05

    def test_transport_ordering_on_sort(self):
        """Proactive (overlapped) <= memory (post-map fetch) <= pull (disk)."""
        times = {}
        for name, fw in (
            ("proactive", eclipse_framework()),
            ("memory", replace(spark_framework(), task_overhead=0.1,
                               compute_efficiency=1.0, job_overhead=0.2,
                               metadata_central=False, replication=3,
                               rdd_build_rate=0.0,
                               scheduler_factory=eclipse_framework().scheduler_factory)),
            ("pull", replace(eclipse_framework(), shuffle_mode="pull")),
        ):
            engine, spec = build(fw)
            times[name] = engine.run_job(spec).makespan
        assert times["proactive"] <= times["memory"] * 1.02
        assert times["memory"] <= times["pull"] * 1.02

    def test_shuffle_destinations_receive_everything(self):
        engine, spec = build(eclipse_framework())
        engine.run_job(spec)
        # Round-robin destinations: the fabric carried the shuffle volume
        # minus same-node pushes (local transfers skip the fabric).
        assert engine.cluster.network.bytes_transferred > 0
